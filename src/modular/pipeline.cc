#include "modular/pipeline.h"

#include <cmath>

#include "common/stopwatch.h"
#include "modular/strategies.h"

namespace vqi {

StageRegistry& StageRegistry::Global() {
  static StageRegistry* registry = [] {
    auto* r = new StageRegistry();
    RegisterBuiltinStages(*r);
    return r;
  }();
  return *registry;
}

void StageRegistry::RegisterFeature(const std::string& name,
                                    FeatureFactory factory) {
  features_[name] = std::move(factory);
}
void StageRegistry::RegisterCluster(const std::string& name,
                                    ClusterFactory factory) {
  clusters_[name] = std::move(factory);
}
void StageRegistry::RegisterMerge(const std::string& name,
                                  MergeFactory factory) {
  merges_[name] = std::move(factory);
}
void StageRegistry::RegisterExtract(const std::string& name,
                                    ExtractFactory factory) {
  extracts_[name] = std::move(factory);
}

namespace {
template <typename Map, typename Ptr>
StatusOr<Ptr> Create(const Map& map, const std::string& name,
                     const char* kind) {
  auto it = map.find(name);
  if (it == map.end()) {
    return Status::NotFound(std::string("no ") + kind + " stage named '" +
                            name + "'");
  }
  return it->second();
}

template <typename Map>
std::vector<std::string> Names(const Map& map) {
  std::vector<std::string> names;
  for (const auto& [name, factory] : map) names.push_back(name);
  return names;
}
}  // namespace

StatusOr<std::unique_ptr<FeatureStage>> StageRegistry::CreateFeature(
    const std::string& name) const {
  return Create<decltype(features_), std::unique_ptr<FeatureStage>>(
      features_, name, "feature");
}
StatusOr<std::unique_ptr<ClusterStage>> StageRegistry::CreateCluster(
    const std::string& name) const {
  return Create<decltype(clusters_), std::unique_ptr<ClusterStage>>(
      clusters_, name, "cluster");
}
StatusOr<std::unique_ptr<MergeStage>> StageRegistry::CreateMerge(
    const std::string& name) const {
  return Create<decltype(merges_), std::unique_ptr<MergeStage>>(merges_, name,
                                                                "merge");
}
StatusOr<std::unique_ptr<ExtractStage>> StageRegistry::CreateExtract(
    const std::string& name) const {
  return Create<decltype(extracts_), std::unique_ptr<ExtractStage>>(
      extracts_, name, "extract");
}

std::vector<std::string> StageRegistry::FeatureNames() const {
  return Names(features_);
}
std::vector<std::string> StageRegistry::ClusterNames() const {
  return Names(clusters_);
}
std::vector<std::string> StageRegistry::MergeNames() const {
  return Names(merges_);
}
std::vector<std::string> StageRegistry::ExtractNames() const {
  return Names(extracts_);
}

StatusOr<ModularRunResult> RunModularPipeline(
    const GraphDatabase& db, const ModularPipelineConfig& config) {
  if (db.empty()) {
    return Status::InvalidArgument("modular pipeline needs a non-empty db");
  }
  StageRegistry& registry = StageRegistry::Global();
  auto feature = registry.CreateFeature(config.feature_stage);
  if (!feature.ok()) return feature.status();
  auto cluster = registry.CreateCluster(config.cluster_stage);
  if (!cluster.ok()) return cluster.status();
  auto merge = registry.CreateMerge(config.merge_stage);
  if (!merge.ok()) return merge.status();
  auto extract = registry.CreateExtract(config.extract_stage);
  if (!extract.ok()) return extract.status();

  ModularRunResult result;
  Rng rng(config.seed);
  Stopwatch watch;

  std::vector<FeatureVector> features = (*feature)->Compute(db, rng);
  result.stats.feature_seconds = watch.ElapsedSeconds();
  watch.Restart();

  size_t k = config.num_clusters;
  if (k == 0) {
    k = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(db.size()))));
  }
  ClusteringResult clustering = (*cluster)->Cluster(features, k, rng);
  result.stats.cluster_seconds = watch.ElapsedSeconds();
  watch.Restart();

  std::vector<std::vector<size_t>> members =
      ClusterMembers(clustering.assignment, clustering.num_clusters());
  std::vector<ClusterSummaryGraph> summaries = (*merge)->Merge(db, members, rng);
  result.stats.merge_seconds = watch.ElapsedSeconds();
  watch.Restart();

  result.patterns = (*extract)->Extract(summaries, db, config.budget, rng);
  result.stats.extract_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace vqi
