#include "modular/strategies.h"

#include <algorithm>

#include "catapult/candidate_generator.h"
#include "catapult/catapult.h"
#include "cluster/agglomerative.h"
#include "metrics/coverage.h"
#include "mining/graphlets.h"
#include "mining/tree_miner.h"

namespace vqi {
namespace {

class FrequentTreeFeatures : public FeatureStage {
 public:
  std::string name() const override { return "frequent-trees"; }
  std::vector<FeatureVector> Compute(const GraphDatabase& db,
                                     Rng& /*rng*/) override {
    TreeMinerConfig config;
    config.min_support = std::max<size_t>(2, db.size() / 10);
    config.max_edges = 2;
    std::vector<FrequentTree> basis = MineFrequentTrees(db, config);
    if (basis.empty()) {
      // Fall back to graphlet features when the collection shares no trees.
      std::vector<FeatureVector> features;
      for (const Graph& g : db.graphs()) {
        GraphletDistribution d = GraphletsOf(g);
        features.emplace_back(d.freq.begin(), d.freq.end());
      }
      return features;
    }
    return TreeFeatures(db, basis);
  }
};

class GraphletFeatures : public FeatureStage {
 public:
  std::string name() const override { return "graphlets"; }
  std::vector<FeatureVector> Compute(const GraphDatabase& db,
                                     Rng& /*rng*/) override {
    std::vector<FeatureVector> features;
    features.reserve(db.size());
    for (const Graph& g : db.graphs()) {
      GraphletDistribution d = GraphletsOf(g);
      features.emplace_back(d.freq.begin(), d.freq.end());
    }
    return features;
  }
};

class KMedoidsCluster : public ClusterStage {
 public:
  std::string name() const override { return "kmedoids"; }
  ClusteringResult Cluster(const std::vector<FeatureVector>& features,
                           size_t k, Rng& rng) override {
    return KMedoids(features, k, DistanceMetric::kCosine, rng);
  }
};

class AgglomerativeCluster : public ClusterStage {
 public:
  std::string name() const override { return "agglomerative"; }
  ClusteringResult Cluster(const std::vector<FeatureVector>& features,
                           size_t k, Rng& /*rng*/) override {
    return AgglomerativeAverageLinkage(features, k, DistanceMetric::kCosine);
  }
};

class CsgMerge : public MergeStage {
 public:
  std::string name() const override { return "csg"; }
  std::vector<ClusterSummaryGraph> Merge(
      const GraphDatabase& db, const std::vector<std::vector<size_t>>& members,
      Rng& /*rng*/) override {
    std::vector<ClusterSummaryGraph> summaries;
    summaries.reserve(members.size());
    for (const auto& cluster : members) {
      std::vector<const Graph*> graphs;
      for (size_t index : cluster) graphs.push_back(&db.graphs()[index]);
      summaries.push_back(ClusterSummaryGraph::Build(graphs));
    }
    return summaries;
  }
};

class WeightedWalkExtract : public ExtractStage {
 public:
  std::string name() const override { return "weighted-walk"; }
  std::vector<Graph> Extract(const std::vector<ClusterSummaryGraph>& summaries,
                             const GraphDatabase& db, size_t budget,
                             Rng& rng) override {
    CandidateGenConfig gen;
    std::vector<Graph> candidates = GenerateCandidates(summaries, gen, rng);
    CognitiveLoadModel load_model;
    std::vector<ScoredCandidate> scored =
        ScoreCandidates(db, std::move(candidates), load_model);
    ScoreWeights weights;
    std::vector<size_t> picked =
        GreedySelect(scored, budget, db.size(), weights);
    std::vector<Graph> patterns;
    for (size_t i : picked) patterns.push_back(scored[i].pattern);
    return patterns;
  }
};

// Baseline extractor: most-covering frequent subtrees, coverage only —
// no diversity/cognitive-load awareness. Used as an ablation.
class FrequentSubgraphExtract : public ExtractStage {
 public:
  std::string name() const override { return "frequent-subgraph"; }
  std::vector<Graph> Extract(const std::vector<ClusterSummaryGraph>& /*csgs*/,
                             const GraphDatabase& db, size_t budget,
                             Rng& /*rng*/) override {
    TreeMinerConfig config;
    config.min_support = std::max<size_t>(2, db.size() / 20);
    config.max_edges = 4;
    std::vector<FrequentTree> trees = MineFrequentTrees(db, config);
    // Keep only canned-size trees, sorted by support.
    std::vector<FrequentTree*> big;
    for (FrequentTree& t : trees) {
      if (t.tree.NumEdges() >= 4) big.push_back(&t);
    }
    std::sort(big.begin(), big.end(),
              [](const FrequentTree* a, const FrequentTree* b) {
                return a->support_count() > b->support_count();
              });
    std::vector<Graph> patterns;
    for (size_t i = 0; i < big.size() && patterns.size() < budget; ++i) {
      patterns.push_back(big[i]->tree);
    }
    return patterns;
  }
};

}  // namespace

void RegisterBuiltinStages(StageRegistry& registry) {
  registry.RegisterFeature("frequent-trees", [] {
    return std::make_unique<FrequentTreeFeatures>();
  });
  registry.RegisterFeature("graphlets",
                           [] { return std::make_unique<GraphletFeatures>(); });
  registry.RegisterCluster("kmedoids",
                           [] { return std::make_unique<KMedoidsCluster>(); });
  registry.RegisterCluster("agglomerative", [] {
    return std::make_unique<AgglomerativeCluster>();
  });
  registry.RegisterMerge("csg", [] { return std::make_unique<CsgMerge>(); });
  registry.RegisterExtract("weighted-walk", [] {
    return std::make_unique<WeightedWalkExtract>();
  });
  registry.RegisterExtract("frequent-subgraph", [] {
    return std::make_unique<FrequentSubgraphExtract>();
  });
}

}  // namespace vqi
