#ifndef VQLIB_MODULAR_PIPELINE_H_
#define VQLIB_MODULAR_PIPELINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/csg.h"
#include "cluster/features.h"
#include "cluster/kmedoids.h"
#include "common/rng.h"
#include "common/status.h"
#include "graph/graph_database.h"

namespace vqi {

/// The modular canned-pattern-selection architecture of Tzanikos et al.
/// (DEXA'21): the problem is decomposed into four independent stages —
/// similarity (feature) computation, clustering, merging into continuous
/// graphs, and pattern extraction — each replaceable by any implementation
/// of the stage interface. Strategies register by name so pipelines can be
/// assembled from configuration.

/// Stage 1: per-graph feature vectors for the similarity computation.
class FeatureStage {
 public:
  virtual ~FeatureStage() = default;
  virtual std::string name() const = 0;
  virtual std::vector<FeatureVector> Compute(const GraphDatabase& db,
                                             Rng& rng) = 0;
};

/// Stage 2: clustering of the feature vectors.
class ClusterStage {
 public:
  virtual ~ClusterStage() = default;
  virtual std::string name() const = 0;
  virtual ClusteringResult Cluster(const std::vector<FeatureVector>& features,
                                   size_t k, Rng& rng) = 0;
};

/// Stage 3: merging each cluster into one continuous graph.
class MergeStage {
 public:
  virtual ~MergeStage() = default;
  virtual std::string name() const = 0;
  virtual std::vector<ClusterSummaryGraph> Merge(
      const GraphDatabase& db, const std::vector<std::vector<size_t>>& members,
      Rng& rng) = 0;
};

/// Stage 4: extracting the canned pattern set from the continuous graphs.
class ExtractStage {
 public:
  virtual ~ExtractStage() = default;
  virtual std::string name() const = 0;
  virtual std::vector<Graph> Extract(
      const std::vector<ClusterSummaryGraph>& summaries,
      const GraphDatabase& db, size_t budget, Rng& rng) = 0;
};

/// Pipeline assembly + run statistics.
struct ModularPipelineConfig {
  std::string feature_stage = "frequent-trees";
  std::string cluster_stage = "kmedoids";
  std::string merge_stage = "csg";
  std::string extract_stage = "weighted-walk";
  size_t num_clusters = 0;  // 0 = sqrt(n)
  size_t budget = 10;
  uint64_t seed = 42;
};

struct ModularRunStats {
  double feature_seconds = 0.0;
  double cluster_seconds = 0.0;
  double merge_seconds = 0.0;
  double extract_seconds = 0.0;
};

struct ModularRunResult {
  std::vector<Graph> patterns;
  ModularRunStats stats;
};

/// Registry of named stage factories. Built-in strategies are registered on
/// first access; libraries/tests can add their own.
class StageRegistry {
 public:
  using FeatureFactory = std::function<std::unique_ptr<FeatureStage>()>;
  using ClusterFactory = std::function<std::unique_ptr<ClusterStage>()>;
  using MergeFactory = std::function<std::unique_ptr<MergeStage>()>;
  using ExtractFactory = std::function<std::unique_ptr<ExtractStage>()>;

  /// Process-wide registry instance with built-ins pre-registered.
  static StageRegistry& Global();

  void RegisterFeature(const std::string& name, FeatureFactory factory);
  void RegisterCluster(const std::string& name, ClusterFactory factory);
  void RegisterMerge(const std::string& name, MergeFactory factory);
  void RegisterExtract(const std::string& name, ExtractFactory factory);

  StatusOr<std::unique_ptr<FeatureStage>> CreateFeature(
      const std::string& name) const;
  StatusOr<std::unique_ptr<ClusterStage>> CreateCluster(
      const std::string& name) const;
  StatusOr<std::unique_ptr<MergeStage>> CreateMerge(
      const std::string& name) const;
  StatusOr<std::unique_ptr<ExtractStage>> CreateExtract(
      const std::string& name) const;

  std::vector<std::string> FeatureNames() const;
  std::vector<std::string> ClusterNames() const;
  std::vector<std::string> MergeNames() const;
  std::vector<std::string> ExtractNames() const;

 private:
  std::map<std::string, FeatureFactory> features_;
  std::map<std::string, ClusterFactory> clusters_;
  std::map<std::string, MergeFactory> merges_;
  std::map<std::string, ExtractFactory> extracts_;
};

/// Assembles the named stages from the global registry and runs them.
StatusOr<ModularRunResult> RunModularPipeline(
    const GraphDatabase& db, const ModularPipelineConfig& config);

}  // namespace vqi

#endif  // VQLIB_MODULAR_PIPELINE_H_
