#include "cluster/features.h"

#include <algorithm>
#include <unordered_map>

#include "match/vf2.h"

namespace vqi {

std::vector<FeatureVector> TreeFeatures(
    const GraphDatabase& db, const std::vector<FrequentTree>& basis) {
  std::unordered_map<GraphId, size_t> position;
  position.reserve(db.size());
  for (size_t i = 0; i < db.graphs().size(); ++i) {
    position[db.graphs()[i].id()] = i;
  }
  std::vector<FeatureVector> features(db.size(),
                                      FeatureVector(basis.size(), 0.0));
  for (size_t dim = 0; dim < basis.size(); ++dim) {
    for (GraphId gid : basis[dim].support) {
      auto it = position.find(gid);
      if (it != position.end()) features[it->second][dim] = 1.0;
    }
  }
  return features;
}

FeatureVector TreeFeatureOf(const Graph& g,
                            const std::vector<FrequentTree>& basis) {
  FeatureVector f(basis.size(), 0.0);
  for (size_t dim = 0; dim < basis.size(); ++dim) {
    if (ContainsSubgraph(g, basis[dim].tree)) f[dim] = 1.0;
  }
  return f;
}

}  // namespace vqi
