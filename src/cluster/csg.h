#ifndef VQLIB_CLUSTER_CSG_H_
#define VQLIB_CLUSTER_CSG_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace vqi {

/// A Cluster Summary Graph: the iterative fold of all member graphs of a
/// cluster into one weighted graph (CATAPULT §"cluster summary graph").
///
/// Unlike the wildcard-bearing closure of closure-trees, the CSG keeps the
/// *majority* label at each aligned vertex/edge (label votes are tracked),
/// so subgraphs extracted from the CSG remain matchable patterns. Every edge
/// carries a weight = number of member graphs folded through it, which is
/// the bias for CATAPULT's weighted random walks: heavier edges are shared
/// by more cluster members and thus yield higher-coverage patterns.
class ClusterSummaryGraph {
 public:
  ClusterSummaryGraph() = default;

  /// Folds the members in order. Alignment is the greedy closure alignment.
  static ClusterSummaryGraph Build(const std::vector<const Graph*>& members);

  /// Folds one more member graph into the summary.
  void Fold(const Graph& member);

  /// The summary graph with majority labels.
  const Graph& graph() const { return graph_; }

  /// Number of member graphs folded through edge {u,v} (0 if absent).
  double EdgeWeight(VertexId u, VertexId v) const;

  size_t num_members() const { return num_members_; }

 private:
  void VoteVertexLabel(VertexId v, Label label);
  void VoteEdgeLabel(VertexId u, VertexId v, Label label);
  static uint64_t EdgeKey(VertexId u, VertexId v);

  Graph graph_;
  size_t num_members_ = 0;
  std::unordered_map<uint64_t, double> edge_weights_;
  // Label votes; majority wins after each fold.
  std::vector<std::map<Label, size_t>> vertex_votes_;
  std::unordered_map<uint64_t, std::map<Label, size_t>> edge_votes_;
};

}  // namespace vqi

#endif  // VQLIB_CLUSTER_CSG_H_
