#include "cluster/closure.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "graph/graph_algos.h"

namespace vqi {

namespace {
constexpr VertexId kNew = 0xFFFFFFFFu;
}  // namespace

std::vector<VertexId> GreedyAlign(const Graph& a, const Graph& b) {
  std::vector<VertexId> mapping(b.NumVertices(), kNew);
  std::vector<bool> used(a.NumVertices(), false);

  // Process b's vertices in BFS order from its highest-degree vertex so that
  // neighbor overlap information accumulates along the traversal.
  std::vector<VertexId> order;
  if (b.NumVertices() > 0) {
    VertexId start = 0;
    for (VertexId v = 1; v < b.NumVertices(); ++v) {
      if (b.Degree(v) > b.Degree(start)) start = v;
    }
    order = BfsOrder(b, start);
    // Append vertices of other components.
    std::vector<bool> seen(b.NumVertices(), false);
    for (VertexId v : order) seen[v] = true;
    for (VertexId v = 0; v < b.NumVertices(); ++v) {
      if (!seen[v]) {
        std::vector<VertexId> extra = BfsOrder(b, v);
        for (VertexId u : extra) {
          if (!seen[u]) {
            seen[u] = true;
            order.push_back(u);
          }
        }
      }
    }
  }

  for (VertexId bv : order) {
    // Score every unused a-vertex: +2 for label equality, +1 per mapped
    // b-neighbor whose image is adjacent in a.
    int best_score = 0;  // require a strictly positive score to map
    int best_vertex = -1;
    for (VertexId av = 0; av < a.NumVertices(); ++av) {
      if (used[av]) continue;
      int score = 0;
      if (a.VertexLabel(av) == b.VertexLabel(bv)) score += 2;
      for (const Neighbor& nb : b.Neighbors(bv)) {
        VertexId image = mapping[nb.vertex];
        if (image != kNew && a.HasEdge(av, image)) score += 1;
      }
      if (score > best_score ||
          (score == best_score && best_vertex >= 0 && score > 0 &&
           a.Degree(av) > a.Degree(static_cast<VertexId>(best_vertex)))) {
        best_score = score;
        best_vertex = static_cast<int>(av);
      }
    }
    if (best_vertex >= 0 && best_score > 0) {
      mapping[bv] = static_cast<VertexId>(best_vertex);
      used[static_cast<size_t>(best_vertex)] = true;
    }
  }
  return mapping;
}

Graph GraphClosure(const Graph& a, const Graph& b) {
  Graph closure = a;
  std::vector<VertexId> mapping = GreedyAlign(a, b);
  // Materialize fresh vertices for unmapped b-vertices.
  for (VertexId bv = 0; bv < b.NumVertices(); ++bv) {
    if (mapping[bv] == kNew) {
      mapping[bv] = closure.AddVertex(b.VertexLabel(bv));
    } else if (closure.VertexLabel(mapping[bv]) != b.VertexLabel(bv)) {
      closure.SetVertexLabel(mapping[bv], kDummyLabel);
    }
  }
  for (const Edge& e : b.Edges()) {
    VertexId u = mapping[e.u];
    VertexId v = mapping[e.v];
    std::optional<Label> existing = closure.EdgeLabel(u, v);
    if (!existing.has_value()) {
      closure.AddEdge(u, v, e.label);
    } else if (*existing != e.label) {
      closure.RemoveEdge(u, v);
      closure.AddEdge(u, v, kDummyLabel);
    }
  }
  return closure;
}

}  // namespace vqi
