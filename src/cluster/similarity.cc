#include "cluster/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vqi {

double CosineSimilarity(const FeatureVector& a, const FeatureVector& b) {
  VQI_CHECK_EQ(a.size(), b.size());
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  if (norm_a == 0.0 && norm_b == 0.0) return 1.0;
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double Distance(const FeatureVector& a, const FeatureVector& b,
                DistanceMetric metric) {
  VQI_CHECK_EQ(a.size(), b.size());
  switch (metric) {
    case DistanceMetric::kEuclidean: {
      double sum = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        sum += d * d;
      }
      return std::sqrt(sum);
    }
    case DistanceMetric::kCosine:
      return 1.0 - CosineSimilarity(a, b);
    case DistanceMetric::kJaccard: {
      double min_sum = 0.0, max_sum = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        min_sum += std::min(a[i], b[i]);
        max_sum += std::max(a[i], b[i]);
      }
      if (max_sum == 0.0) return 0.0;
      return 1.0 - min_sum / max_sum;
    }
  }
  return 0.0;
}

}  // namespace vqi
