#ifndef VQLIB_CLUSTER_SIMILARITY_H_
#define VQLIB_CLUSTER_SIMILARITY_H_

#include "cluster/features.h"

namespace vqi {

/// Distance metrics over feature vectors. All are proper dissimilarities in
/// [0, inf); cosine and Jaccard are bounded by 1.
enum class DistanceMetric {
  kEuclidean,
  kCosine,   // 1 - cosine similarity; two zero vectors have distance 0
  kJaccard,  // 1 - |min|/|max| (binary vectors: 1 - intersection/union)
};

/// Distance between two equal-dimension vectors under `metric`.
double Distance(const FeatureVector& a, const FeatureVector& b,
                DistanceMetric metric);

/// Cosine similarity in [0,1] for non-negative vectors (0 when either is
/// all-zero and the other is not; 1 when both are all-zero).
double CosineSimilarity(const FeatureVector& a, const FeatureVector& b);

}  // namespace vqi

#endif  // VQLIB_CLUSTER_SIMILARITY_H_
