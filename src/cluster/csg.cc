#include "cluster/csg.h"

#include <algorithm>

#include "cluster/closure.h"
#include "common/logging.h"

namespace vqi {

namespace {
constexpr VertexId kNew = 0xFFFFFFFFu;
}  // namespace

uint64_t ClusterSummaryGraph::EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

ClusterSummaryGraph ClusterSummaryGraph::Build(
    const std::vector<const Graph*>& members) {
  ClusterSummaryGraph csg;
  for (const Graph* g : members) {
    VQI_CHECK(g != nullptr);
    csg.Fold(*g);
  }
  return csg;
}

void ClusterSummaryGraph::VoteVertexLabel(VertexId v, Label label) {
  if (vertex_votes_.size() <= v) vertex_votes_.resize(v + 1);
  std::map<Label, size_t>& votes = vertex_votes_[v];
  ++votes[label];
  // Majority label (ties: smaller label wins via map order).
  Label best = votes.begin()->first;
  size_t best_count = votes.begin()->second;
  for (const auto& [l, c] : votes) {
    if (c > best_count) {
      best = l;
      best_count = c;
    }
  }
  graph_.SetVertexLabel(v, best);
}

void ClusterSummaryGraph::VoteEdgeLabel(VertexId u, VertexId v, Label label) {
  std::map<Label, size_t>& votes = edge_votes_[EdgeKey(u, v)];
  ++votes[label];
  Label best = votes.begin()->first;
  size_t best_count = votes.begin()->second;
  for (const auto& [l, c] : votes) {
    if (c > best_count) {
      best = l;
      best_count = c;
    }
  }
  // Refresh the stored edge label.
  graph_.RemoveEdge(u, v);
  graph_.AddEdge(u, v, best);
}

void ClusterSummaryGraph::Fold(const Graph& member) {
  std::vector<VertexId> mapping = GreedyAlign(graph_, member);
  for (VertexId bv = 0; bv < member.NumVertices(); ++bv) {
    if (mapping[bv] == kNew) {
      mapping[bv] = graph_.AddVertex(member.VertexLabel(bv));
    }
    VoteVertexLabel(mapping[bv], member.VertexLabel(bv));
  }
  for (const Edge& e : member.Edges()) {
    VertexId u = mapping[e.u];
    VertexId v = mapping[e.v];
    if (!graph_.HasEdge(u, v)) graph_.AddEdge(u, v, e.label);
    VoteEdgeLabel(u, v, e.label);
    edge_weights_[EdgeKey(u, v)] += 1.0;
  }
  ++num_members_;
}

double ClusterSummaryGraph::EdgeWeight(VertexId u, VertexId v) const {
  auto it = edge_weights_.find(EdgeKey(u, v));
  return it == edge_weights_.end() ? 0.0 : it->second;
}

}  // namespace vqi
