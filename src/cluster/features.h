#ifndef VQLIB_CLUSTER_FEATURES_H_
#define VQLIB_CLUSTER_FEATURES_H_

#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "mining/tree_miner.h"

namespace vqi {

/// Dense feature vector of a data graph; dimension i corresponds to the i-th
/// frequent (closed) tree of the feature basis.
using FeatureVector = std::vector<double>;

/// Binary tree-occurrence features for every graph of `db`, in
/// db.graphs() order, read directly off the miners' support sets (no extra
/// isomorphism tests).
std::vector<FeatureVector> TreeFeatures(const GraphDatabase& db,
                                        const std::vector<FrequentTree>& basis);

/// Feature vector of a graph not part of the mining run (e.g. a newly added
/// graph in MIDAS); each basis tree is matched with subgraph isomorphism.
FeatureVector TreeFeatureOf(const Graph& g,
                            const std::vector<FrequentTree>& basis);

}  // namespace vqi

#endif  // VQLIB_CLUSTER_FEATURES_H_
