#include "cluster/agglomerative.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace vqi {

ClusteringResult AgglomerativeAverageLinkage(
    const std::vector<FeatureVector>& points, size_t k,
    DistanceMetric metric) {
  ClusteringResult result;
  size_t n = points.size();
  if (n == 0) return result;
  k = std::max<size_t>(1, std::min(k, n));

  // Active clusters as member lists; Lance-Williams style average-linkage
  // distances maintained in a dense matrix.
  std::vector<std::vector<size_t>> clusters(n);
  for (size_t i = 0; i < n; ++i) clusters[i] = {i};
  std::vector<bool> active(n, true);
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      dist[i][j] = dist[j][i] = Distance(points[i], points[j], metric);
    }
  }

  size_t active_count = n;
  while (active_count > k) {
    // Find the closest active pair.
    size_t best_i = 0, best_j = 0;
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (dist[i][j] < best) {
          best = dist[i][j];
          best_i = i;
          best_j = j;
        }
      }
    }
    // Merge j into i; update average-linkage distances:
    // d(i∪j, x) = (|i| d(i,x) + |j| d(j,x)) / (|i| + |j|).
    double si = static_cast<double>(clusters[best_i].size());
    double sj = static_cast<double>(clusters[best_j].size());
    for (size_t x = 0; x < n; ++x) {
      if (!active[x] || x == best_i || x == best_j) continue;
      dist[best_i][x] = dist[x][best_i] =
          (si * dist[best_i][x] + sj * dist[best_j][x]) / (si + sj);
    }
    clusters[best_i].insert(clusters[best_i].end(), clusters[best_j].begin(),
                            clusters[best_j].end());
    clusters[best_j].clear();
    active[best_j] = false;
    --active_count;
  }

  // Emit assignment + most-central member as pseudo-medoid.
  result.assignment.assign(n, 0);
  int cluster_index = 0;
  for (size_t c = 0; c < n; ++c) {
    if (!active[c]) continue;
    for (size_t member : clusters[c]) {
      result.assignment[member] = cluster_index;
    }
    // Medoid: member minimizing summed distance to the rest.
    size_t best_member = clusters[c][0];
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t a : clusters[c]) {
      double cost = 0.0;
      for (size_t b : clusters[c]) {
        cost += Distance(points[a], points[b], metric);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_member = a;
      }
    }
    result.medoids.push_back(best_member);
    ++cluster_index;
  }
  // Total cost against medoids.
  result.cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.cost += Distance(
        points[i], points[result.medoids[result.assignment[i]]], metric);
  }
  return result;
}

}  // namespace vqi
