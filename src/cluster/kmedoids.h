#ifndef VQLIB_CLUSTER_KMEDOIDS_H_
#define VQLIB_CLUSTER_KMEDOIDS_H_

#include <vector>

#include "cluster/similarity.h"
#include "common/rng.h"

namespace vqi {

/// Result of a flat clustering of n points into k groups.
struct ClusteringResult {
  /// Cluster index of every point (0..k-1).
  std::vector<int> assignment;
  /// Point index of each cluster's medoid (meaningful for k-medoids; for
  /// other algorithms the most central member is reported).
  std::vector<size_t> medoids;
  /// Sum of point-to-medoid distances.
  double cost = 0.0;

  size_t num_clusters() const { return medoids.size(); }
};

/// k-medoids (PAM-style): greedy BUILD initialization followed by
/// alternating assignment / medoid-update sweeps until convergence or
/// `max_iterations`. Deterministic given the rng seed. k is clamped to the
/// number of points.
ClusteringResult KMedoids(const std::vector<FeatureVector>& points, size_t k,
                          DistanceMetric metric, Rng& rng,
                          size_t max_iterations = 30);

/// Members of each cluster, from an assignment vector.
std::vector<std::vector<size_t>> ClusterMembers(
    const std::vector<int>& assignment, size_t num_clusters);

/// Mean silhouette coefficient of a clustering (quality in [-1, 1]);
/// clusterings with singleton-only clusters return 0.
double MeanSilhouette(const std::vector<FeatureVector>& points,
                      const ClusteringResult& clustering,
                      DistanceMetric metric);

}  // namespace vqi

#endif  // VQLIB_CLUSTER_KMEDOIDS_H_
