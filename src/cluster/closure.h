#ifndef VQLIB_CLUSTER_CLOSURE_H_
#define VQLIB_CLUSTER_CLOSURE_H_

#include <vector>

#include "graph/graph.h"

namespace vqi {

/// Computes a greedy structural mapping from every vertex of `b` onto a
/// vertex of `a` or onto a fresh slot (0xFFFFFFFF means "new vertex").
/// Matching prefers equal labels and maximal overlap with already-mapped
/// neighbors — a practical stand-in for the (NP-hard) optimal alignment used
/// conceptually by closure-trees.
std::vector<VertexId> GreedyAlign(const Graph& a, const Graph& b);

/// Graph closure of `a` and `b` (He & Singh, ICDE'06 style): vertices and
/// edges of both graphs are represented; where the aligned elements disagree
/// on a label, the closure carries kDummyLabel (wildcard). The closure of a
/// set integrates graphs of varying sizes into one graph such that every
/// vertex and edge of every member is represented.
Graph GraphClosure(const Graph& a, const Graph& b);

}  // namespace vqi

#endif  // VQLIB_CLUSTER_CLOSURE_H_
