#ifndef VQLIB_CLUSTER_AGGLOMERATIVE_H_
#define VQLIB_CLUSTER_AGGLOMERATIVE_H_

#include "cluster/kmedoids.h"

namespace vqi {

/// Average-linkage agglomerative clustering down to `k` clusters.
/// Quadratic memory (full distance matrix) and cubic-ish time; intended for
/// collections up to a few thousand points. Offered as an alternative
/// clustering strategy in the modular (Tzanikos-style) pipeline.
ClusteringResult AgglomerativeAverageLinkage(
    const std::vector<FeatureVector>& points, size_t k,
    DistanceMetric metric);

}  // namespace vqi

#endif  // VQLIB_CLUSTER_AGGLOMERATIVE_H_
