#include "cluster/kmedoids.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace vqi {

namespace {

// Assigns every point to its nearest medoid; returns total cost.
double Assign(const std::vector<FeatureVector>& points,
              const std::vector<size_t>& medoids, DistanceMetric metric,
              std::vector<int>& assignment) {
  double cost = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_cluster = 0;
    for (size_t c = 0; c < medoids.size(); ++c) {
      double d = Distance(points[i], points[medoids[c]], metric);
      if (d < best) {
        best = d;
        best_cluster = static_cast<int>(c);
      }
    }
    assignment[i] = best_cluster;
    cost += best;
  }
  return cost;
}

}  // namespace

ClusteringResult KMedoids(const std::vector<FeatureVector>& points, size_t k,
                          DistanceMetric metric, Rng& rng,
                          size_t max_iterations) {
  ClusteringResult result;
  size_t n = points.size();
  if (n == 0) return result;
  k = std::min(k, n);
  VQI_CHECK_GE(k, 1u);

  // BUILD: first medoid minimizes total distance on a sample; subsequent
  // medoids maximize marginal cost reduction (classic greedy PAM BUILD).
  std::vector<size_t> medoids;
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  {
    size_t best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    // On large inputs evaluate a random sample of starting candidates.
    size_t candidates = std::min<size_t>(n, 64);
    for (size_t t = 0; t < candidates; ++t) {
      size_t cand = (candidates == n) ? t : rng.UniformInt(n);
      double cost = 0.0;
      for (size_t i = 0; i < n; ++i) {
        cost += Distance(points[i], points[cand], metric);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = cand;
      }
    }
    medoids.push_back(best);
    for (size_t i = 0; i < n; ++i) {
      nearest[i] = Distance(points[i], points[best], metric);
    }
  }
  while (medoids.size() < k) {
    size_t best = medoids[0];
    double best_gain = -1.0;
    for (size_t cand = 0; cand < n; ++cand) {
      if (std::find(medoids.begin(), medoids.end(), cand) != medoids.end()) {
        continue;
      }
      double gain = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double d = Distance(points[i], points[cand], metric);
        if (d < nearest[i]) gain += nearest[i] - d;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = cand;
      }
    }
    medoids.push_back(best);
    for (size_t i = 0; i < n; ++i) {
      nearest[i] =
          std::min(nearest[i], Distance(points[i], points[best], metric));
    }
  }

  // Alternating refinement: assignment, then per-cluster medoid update.
  std::vector<int> assignment(n, 0);
  double cost = Assign(points, medoids, metric, assignment);
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    std::vector<std::vector<size_t>> members =
        ClusterMembers(assignment, medoids.size());
    for (size_t c = 0; c < medoids.size(); ++c) {
      if (members[c].empty()) continue;
      size_t best = medoids[c];
      double best_cost = std::numeric_limits<double>::infinity();
      for (size_t cand : members[c]) {
        double cand_cost = 0.0;
        for (size_t other : members[c]) {
          cand_cost += Distance(points[other], points[cand], metric);
        }
        if (cand_cost < best_cost) {
          best_cost = cand_cost;
          best = cand;
        }
      }
      if (best != medoids[c]) {
        medoids[c] = best;
        changed = true;
      }
    }
    if (!changed) break;
    cost = Assign(points, medoids, metric, assignment);
  }

  result.assignment = std::move(assignment);
  result.medoids = std::move(medoids);
  result.cost = cost;
  return result;
}

std::vector<std::vector<size_t>> ClusterMembers(
    const std::vector<int>& assignment, size_t num_clusters) {
  std::vector<std::vector<size_t>> members(num_clusters);
  for (size_t i = 0; i < assignment.size(); ++i) {
    VQI_CHECK_GE(assignment[i], 0);
    VQI_CHECK_LT(static_cast<size_t>(assignment[i]), num_clusters);
    members[assignment[i]].push_back(i);
  }
  return members;
}

double MeanSilhouette(const std::vector<FeatureVector>& points,
                      const ClusteringResult& clustering,
                      DistanceMetric metric) {
  size_t n = points.size();
  if (n == 0 || clustering.num_clusters() < 2) return 0.0;
  std::vector<std::vector<size_t>> members =
      ClusterMembers(clustering.assignment, clustering.num_clusters());
  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t own = static_cast<size_t>(clustering.assignment[i]);
    if (members[own].size() <= 1) continue;  // silhouette undefined
    double a = 0.0;
    for (size_t j : members[own]) {
      if (j != i) a += Distance(points[i], points[j], metric);
    }
    a /= static_cast<double>(members[own].size() - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < members.size(); ++c) {
      if (c == own || members[c].empty()) continue;
      double d = 0.0;
      for (size_t j : members[c]) d += Distance(points[i], points[j], metric);
      d /= static_cast<double>(members[c].size());
      b = std::min(b, d);
    }
    if (!std::isfinite(b)) continue;
    double denom = std::max(a, b);
    total += denom == 0.0 ? 0.0 : (b - a) / denom;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace vqi
