#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace vqi {

ThreadPool::ThreadPool(ThreadPoolOptions options) : options_(options) {
  options_.num_threads = std::max<size_t>(1, options_.num_threads);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& registry = *options_.metrics;
    const obs::Labels& labels = options_.metric_labels;
    queue_depth_ = &registry.GetGauge(
        "vqi_pool_queue_depth", "Tasks admitted but not yet running.", labels);
    queue_wait_ms_ = &registry.GetHistogram(
        "vqi_pool_queue_wait_ms",
        "Time tasks spent queued before a worker picked them up.",
        obs::Histogram::DefaultLatencyBoundsMs(), labels);
    tasks_executed_total_ = &registry.GetCounter(
        "vqi_pool_tasks_executed_total", "Tasks that finished executing.",
        labels);
    registry
        .GetGauge("vqi_pool_threads", "Worker threads in the pool.", labels)
        .Set(static_cast<double>(options_.num_threads));
    registry
        .GetGauge("vqi_pool_queue_capacity",
                  "Queue slots before admission returns kUnavailable.", labels)
        .Set(static_cast<double>(options_.queue_capacity));
  }
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> task) {
  VQI_CHECK(task != nullptr) << "ThreadPool::Submit requires a task";
  {
    MutexLock lock(&mutex_);
    if (stopping_) {
      return Status::Unavailable("thread pool is shutting down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      return Status::Unavailable("task queue is full");
    }
    queue_.push_back(QueuedTask{std::move(task), Stopwatch()});
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
  }
  task_available_.NotifyOne();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  task_available_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(&mutex_);
  return queue_.size();
}

uint64_t ThreadPool::TasksExecuted() const {
  MutexLock lock(&mutex_);
  return executed_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(&mutex_);
      while (!stopping_ && queue_.empty()) task_available_.Wait(mutex_);
      if (queue_.empty()) {
        // stopping_ and nothing left to drain.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_ != nullptr) {
        queue_depth_->Set(static_cast<double>(queue_.size()));
      }
    }
    if (queue_wait_ms_ != nullptr) {
      queue_wait_ms_->Observe(task.enqueued.ElapsedMillis());
    }
    task.fn();
    if (tasks_executed_total_ != nullptr) tasks_executed_total_->Increment();
    {
      MutexLock lock(&mutex_);
      ++executed_;
    }
  }
}

}  // namespace vqi
