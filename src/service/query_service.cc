#include "service/query_service.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "match/canonical.h"

namespace vqi {
namespace {

// Canonicalization (match/canonical.h) enforces this vertex bound; larger
// patterns are served uncached rather than rejected.
constexpr size_t kMaxCacheableVertices = 64;

// First cooperative step slice for deadline-bounded matching. Slices double
// until the matcher finishes or the wall clock passes the deadline, so the
// overshoot past a deadline is bounded by one slice and total work is at most
// twice the final slice.
constexpr uint64_t kInitialStepSlice = 1u << 14;

// Latency samples kept for percentile estimation (ring buffer).
constexpr size_t kMaxLatencySamples = 1u << 16;

bool DeadlinePassed(const QueryRequest& request, const Stopwatch& admitted) {
  return request.deadline_ms > 0 &&
         admitted.ElapsedMillis() >= request.deadline_ms;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

}  // namespace

QueryService::QueryService(const GraphDatabase& db, QueryServiceOptions options)
    : db_(db),
      options_(options),
      suggestions_(SuggestionIndex::Build(db)),
      cache_(std::max<size_t>(1, options.cache_capacity),
             std::max<size_t>(1, options.cache_shards)),
      pool_(ThreadPoolOptions{options.num_threads, options.queue_capacity}) {}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { pool_.Shutdown(); }

std::string QueryService::CacheKey(const QueryRequest& request) const {
  if (options_.cache_capacity == 0) return "";
  if (request.pattern.NumVertices() > kMaxCacheableVertices) return "";
  std::string key;
  if (request.kind == QueryKind::kSuggest) {
    // Suggestions depend only on the focus vertex's label and k.
    key = "s|";
    key += std::to_string(request.pattern.VertexLabel(request.focus));
    key += '|';
    key += std::to_string(request.top_k);
    return key;
  }
  const MatchOptions& mo = options_.match_options;
  key = "m|";
  key += CanonicalCode(request.pattern);
  key += '|';
  key += std::to_string(request.target);
  key += '|';
  key += std::to_string(request.max_embeddings);
  key += '|';
  key += mo.induced ? '1' : '0';
  key += mo.match_vertex_labels ? '1' : '0';
  key += mo.match_edge_labels ? '1' : '0';
  key += mo.dummy_is_wildcard ? '1' : '0';
  return key;
}

StatusOr<std::future<QueryResult>> QueryService::Submit(QueryRequest request) {
  if (request.pattern.Empty()) {
    return Status::InvalidArgument("query pattern is empty");
  }
  if (request.target != kAllGraphs && !db_.Contains(request.target)) {
    return Status::NotFound("unknown target graph id " +
                            std::to_string(request.target));
  }
  if (request.kind == QueryKind::kSuggest &&
      request.focus >= request.pattern.NumVertices()) {
    return Status::InvalidArgument("focus vertex out of range");
  }

  Stopwatch admitted;
  std::string key = CacheKey(request);

  // Cache probe before any pool dispatch: a hit is served synchronously on
  // the submitting thread.
  if (!key.empty()) {
    if (std::optional<QueryResult> hit = cache_.Get(key)) {
      QueryResult result = std::move(*hit);
      result.from_cache = true;
      result.latency_ms = admitted.ElapsedMillis();
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++admitted_;
      }
      RecordCompletion(result);
      std::promise<QueryResult> ready;
      std::future<QueryResult> future = ready.get_future();
      ready.set_value(std::move(result));
      return future;
    }
  }

  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> future = promise->get_future();
  auto shared_request = std::make_shared<QueryRequest>(std::move(request));
  Status submitted = pool_.Submit(
      [this, promise, shared_request, key = std::move(key), admitted] {
        QueryResult result;
        // Second probe at dequeue: an identical request admitted just ahead
        // of this one may have populated the cache while this one queued
        // (coalescing-lite; repeated-query bursts collapse after the first
        // computation). A hit also rescues requests whose deadline expired
        // in the queue — serving it is free.
        std::optional<QueryResult> hit;
        if (!key.empty() && (hit = cache_.Get(key))) {
          result = std::move(*hit);
          result.from_cache = true;
        } else {
          result = Run(*shared_request, admitted);
          if (result.status.ok() && !key.empty()) {
            cache_.Put(key, result);
          }
        }
        result.latency_ms = admitted.ElapsedMillis();
        RecordCompletion(result);
        promise->set_value(std::move(result));
      });
  if (!submitted.ok()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++rejected_;
    return submitted;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++admitted_;
  }
  return future;
}

QueryResult QueryService::Execute(QueryRequest request) {
  auto submitted = Submit(std::move(request));
  if (!submitted.ok()) {
    QueryResult result;
    result.status = submitted.status();
    return result;
  }
  return submitted.value().get();
}

QueryResult QueryService::Run(const QueryRequest& request,
                              const Stopwatch& admitted) {
  if (DeadlinePassed(request, admitted)) {
    QueryResult result;
    result.status = Status::DeadlineExceeded(
        "deadline expired before execution started");
    return result;
  }
  return request.kind == QueryKind::kSuggest ? RunSuggest(request)
                                             : RunMatch(request, admitted);
}

QueryResult QueryService::RunMatch(const QueryRequest& request,
                                   const Stopwatch& admitted) {
  QueryResult result;
  auto match_one = [&](const Graph& target) -> bool {
    if (DeadlinePassed(request, admitted)) return false;
    uint64_t count = 0;
    if (!CountWithDeadline(request.pattern, target, request, admitted,
                           &count)) {
      return false;
    }
    result.embedding_count += count;
    if (count > 0) result.matched_graphs.push_back(target.id());
    return true;
  };

  if (request.target == kAllGraphs) {
    for (const Graph& target : db_.graphs()) {
      if (!match_one(target)) {
        result.status =
            Status::DeadlineExceeded("deadline expired mid-collection");
        return result;
      }
    }
  } else if (!match_one(db_.Get(request.target))) {
    result.status = Status::DeadlineExceeded("deadline expired while matching");
    return result;
  }
  result.status = Status::OK();
  return result;
}

QueryResult QueryService::RunSuggest(const QueryRequest& request) {
  QueryResult result;
  result.suggestions = suggestions_.SuggestNextEdges(
      request.pattern, request.focus, request.top_k);
  result.status = Status::OK();
  return result;
}

bool QueryService::CountWithDeadline(const Graph& pattern, const Graph& target,
                                     const QueryRequest& request,
                                     const Stopwatch& admitted,
                                     uint64_t* count) {
  MatchOptions opts = options_.match_options;
  opts.max_embeddings = request.max_embeddings;
  if (request.deadline_ms <= 0) {
    opts.max_steps = 0;
    SubgraphMatcher matcher(pattern, target, opts);
    *count = matcher.CountEmbeddings();
    return true;
  }
  // The matcher cannot pause/resume, so the cooperative budget hook
  // (max_steps) is applied in exponentially growing slices: re-running from
  // scratch at double the cap costs at most 2x the final successful run and
  // bounds how far past the deadline a worker can overshoot.
  for (uint64_t slice = kInitialStepSlice;; slice *= 2) {
    opts.max_steps = slice;
    SubgraphMatcher matcher(pattern, target, opts);
    *count = matcher.CountEmbeddings();
    if (!matcher.hit_step_limit()) return true;
    if (admitted.ElapsedMillis() >= request.deadline_ms) return false;
  }
}

void QueryService::RecordCompletion(const QueryResult& result) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++completed_;
  if (result.status.code() == StatusCode::kDeadlineExceeded) {
    ++deadline_exceeded_;
  }
  if (latency_samples_ms_.size() < kMaxLatencySamples) {
    latency_samples_ms_.push_back(result.latency_ms);
  } else {
    latency_samples_ms_[completed_ % kMaxLatencySamples] = result.latency_ms;
  }
}

ServiceStats QueryService::Snapshot() const {
  ServiceStats stats;
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats.admitted = admitted_;
    stats.completed = completed_;
    stats.rejected = rejected_;
    stats.deadline_exceeded = deadline_exceeded_;
    samples = latency_samples_ms_;
  }
  CacheStats cache_stats = cache_.GetStats();
  stats.cache_hits = cache_stats.hits;
  stats.cache_misses = cache_stats.misses;
  stats.cache_evictions = cache_stats.evictions;
  stats.p50_latency_ms = Percentile(samples, 0.50);
  stats.p99_latency_ms = Percentile(std::move(samples), 0.99);
  return stats;
}

}  // namespace vqi
