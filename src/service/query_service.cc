#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "match/canonical.h"

namespace vqi {
namespace {

void SleepMs(double ms) {
  if (ms > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

// Canonicalization (match/canonical.h) enforces this vertex bound; larger
// patterns are served uncached rather than rejected.
constexpr size_t kMaxCacheableVertices = 64;

// First cooperative step slice for deadline-bounded matching. Slices double
// until the matcher finishes or the wall clock passes the deadline, so the
// overshoot past a deadline is bounded by one slice and total work is at most
// twice the final slice.
constexpr uint64_t kInitialStepSlice = 1u << 14;

bool DeadlinePassed(const QueryRequest& request, const Stopwatch& admitted) {
  return request.deadline_ms > 0 &&
         admitted.ElapsedMillis() >= request.deadline_ms;
}

// Cooperative cancellation (hedged-request losers): checked at the same
// boundaries as the deadline — between targets and between VF2 slices — so a
// poisoned request stops within one slice, just like a deadline overshoot.
bool CancelRequested(const QueryRequest& request) {
  return request.cancel != nullptr &&
         request.cancel->load(std::memory_order_relaxed);
}

const char* KindName(QueryKind kind) {
  return kind == QueryKind::kSuggest ? "suggest" : "match";
}

}  // namespace

const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kInteractive:
      return "interactive";
    case RequestPriority::kNormal:
      return "normal";
    case RequestPriority::kBackground:
      return "background";
  }
  return "unknown";
}

QueryService::QueryService(const GraphDatabase& db, QueryServiceOptions options)
    : db_(db),
      options_(options),
      registry_(options.metrics != nullptr ? options.metrics : &metrics_),
      traces_(options.trace_capacity),
      suggestions_(SuggestionIndex::Build(db)),
      cache_(std::max<size_t>(1, options.cache_capacity),
             std::max<size_t>(1, options.cache_shards)),
      waiter_budget_(options.coalesce_retry_ratio,
                     options.coalesce_retry_capacity),
      pool_(ThreadPoolOptions{options.num_threads, options.queue_capacity,
                              options.metrics != nullptr ? options.metrics
                                                         : &metrics_,
                              options.metric_labels}) {
  obs::MetricsRegistry& reg = *registry_;
  const obs::Labels& base = options_.metric_labels;
  // Instruments carrying their own label dimension append it to the
  // service-wide base labels, so N shards in one registry never collide.
  auto with = [&base](const char* key, const char* value) {
    obs::Labels labels = base;
    labels.emplace_back(key, value);
    return labels;
  };
  cache_.RegisterMetrics(reg, "vqi_cache", base);
  inflight_.RegisterMetrics(reg, base);
  admitted_total_ = &reg.GetCounter(
      "vqi_requests_admitted_total", "Requests accepted past admission.",
      base);
  completed_total_ = &reg.GetCounter(
      "vqi_requests_completed_total", "Requests resolved (any status).", base);
  rejected_total_ = &reg.GetCounter(
      "vqi_requests_rejected_total",
      "Admission failures: full queue (backpressure) or priority shedding.",
      base);
  shed_background_total_ = &reg.GetCounter(
      "vqi_requests_shed_total",
      "Requests shed by priority at the queue high-water mark.",
      with("priority", "background"));
  shed_normal_total_ = &reg.GetCounter(
      "vqi_requests_shed_total",
      "Requests shed by priority at the queue high-water mark.",
      with("priority", "normal"));
  deadline_exceeded_total_ = &reg.GetCounter(
      "vqi_requests_deadline_exceeded_total",
      "Requests that completed with kDeadlineExceeded.", base);
  truncated_total_ = &reg.GetCounter(
      "vqi_requests_truncated_total",
      "Requests answered with a partial (truncated) result.", base);
  cache_invalidations_total_ = &reg.GetCounter(
      "vqi_cache_invalidations_total",
      "InvalidateCache() epoch bumps (e.g. maintenance batches).", base);
  cache_key_invalidations_total_ = &reg.GetCounter(
      "vqi_cache_key_invalidations_total",
      "InvalidateCacheKey() per-graph epoch bumps.", base);
  cache_probe_faults_total_ = &reg.GetCounter(
      "vqi_cache_probe_degraded_total",
      "Cache probes degraded to a miss by an injected cache fault.", base);
  backend_executions_total_ = &reg.GetCounter(
      "vqi_backend_executions_total",
      "Requests that reached the matcher/suggestion backend; cache hits and "
      "coalesced fan-outs are excluded, so on duplicate-heavy traffic this "
      "tracks the unique-query count rather than the request count.",
      base);
  match_steps_total_ = &reg.GetCounter(
      "vqi_match_steps_total", "VF2 recursion steps across all requests.",
      base);
  match_slices_total_ = &reg.GetCounter(
      "vqi_match_slices_total",
      "Cooperative deadline slices run across all requests.", base);
  latency_ms_ = &reg.GetHistogram(
      "vqi_request_latency_ms", "Admission-to-completion request latency.",
      obs::Histogram::DefaultLatencyBoundsMs(), base);
  slices_per_request_ = &reg.GetHistogram(
      "vqi_match_slices_per_request",
      "VF2 invocations one match request needed: one per target graph, plus "
      "one per deadline-slice retry.",
      obs::Histogram::ExponentialBounds(1, 2, 12), base);
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->RegisterMetrics(reg);
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { pool_.Shutdown(); }

void QueryService::InvalidateCache() {
  cache_epoch_.fetch_add(1, std::memory_order_relaxed);
  cache_invalidations_total_->Increment();
}

void QueryService::InvalidateCacheKey(GraphId graph_id) {
  {
    MutexLock lock(&graph_epochs_mutex_);
    ++graph_epochs_[graph_id];
  }
  // Whole-collection results and suggestions depend on every graph, so they
  // must go too; single-target and explicit-target-set entries that do not
  // involve this graph survive.
  all_graphs_epoch_.fetch_add(1, std::memory_order_relaxed);
  cache_key_invalidations_total_->Increment();
}

uint64_t QueryService::GraphEpoch(GraphId graph_id) const {
  MutexLock lock(&graph_epochs_mutex_);
  auto it = graph_epochs_.find(graph_id);
  return it == graph_epochs_.end() ? 0 : it->second;
}

std::string QueryService::CacheKey(const QueryRequest& request) const {
  if (options_.cache_capacity == 0 && !options_.enable_coalescing) return "";
  if (request.pattern.NumVertices() > kMaxCacheableVertices) return "";
  // The epoch prefix implements InvalidateCache(): bumping it reroutes every
  // lookup away from pre-bump entries, which then age out via LRU. The
  // second segment implements InvalidateCacheKey(): entries are additionally
  // keyed by the epoch of the data they depend on — the target graph's for a
  // single-target match, each member graph's for an explicit target set, the
  // whole collection's for kAllGraphs matches and suggestions. Coalesced
  // waiters are detached by the same mechanism: fan-out recomputes this key
  // and a mid-flight invalidation makes it differ from the entry's.
  std::string key = "e";
  key += std::to_string(cache_epoch_.load(std::memory_order_relaxed));
  key += '|';
  if (request.kind == QueryKind::kSuggest ||
      (request.target == kAllGraphs && request.targets.empty())) {
    key += 'a';
    key += std::to_string(all_graphs_epoch_.load(std::memory_order_relaxed));
  } else if (!request.targets.empty()) {
    // Admission sorted and deduplicated the set, so equal sets produce equal
    // keys. One lock for all members keeps the epoch vector consistent.
    key += 't';
    MutexLock lock(&graph_epochs_mutex_);
    for (GraphId id : request.targets) {
      key += std::to_string(id);
      key += ':';
      auto it = graph_epochs_.find(id);
      key += std::to_string(it == graph_epochs_.end() ? 0 : it->second);
      key += ',';
    }
  } else {
    key += 'g';
    key += std::to_string(GraphEpoch(request.target));
  }
  key += '|';
  if (request.kind == QueryKind::kSuggest) {
    // Suggestions depend only on the focus vertex's label and k.
    key += "s|";
    key += std::to_string(request.pattern.VertexLabel(request.focus));
    key += '|';
    key += std::to_string(request.top_k);
    return key;
  }
  const MatchOptions& mo = options_.match_options;
  key += "m|";
  key += CanonicalCode(request.pattern);
  key += '|';
  key += std::to_string(request.target);
  key += '|';
  key += std::to_string(request.max_embeddings);
  key += '|';
  key += mo.induced ? '1' : '0';
  key += mo.match_vertex_labels ? '1' : '0';
  key += mo.match_edge_labels ? '1' : '0';
  key += mo.dummy_is_wildcard ? '1' : '0';
  return key;
}

StatusOr<std::future<QueryResult>> QueryService::Submit(QueryRequest request) {
  Stopwatch admitted;
  obs::RequestTrace trace;
  trace.id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  trace.kind = KindName(request.kind);
  {
    obs::TraceSpan span(trace, "admission");
    if (request.pattern.Empty()) {
      return Status::InvalidArgument("query pattern is empty");
    }
    if (request.kind == QueryKind::kMatchCount && !request.targets.empty()) {
      // Normalize the explicit target set so semantically equal requests
      // coalesce and cache together: sorted, deduplicated, and the (ignored)
      // single-target field pinned to its default.
      std::sort(request.targets.begin(), request.targets.end());
      request.targets.erase(
          std::unique(request.targets.begin(), request.targets.end()),
          request.targets.end());
      for (GraphId id : request.targets) {
        if (!db_.Contains(id)) {
          return Status::NotFound("unknown target graph id " +
                                  std::to_string(id));
        }
      }
      request.target = kAllGraphs;
    } else if (request.target != kAllGraphs && !db_.Contains(request.target)) {
      return Status::NotFound("unknown target graph id " +
                              std::to_string(request.target));
    }
    if (request.kind == QueryKind::kSuggest &&
        request.focus >= request.pattern.NumVertices()) {
      return Status::InvalidArgument("focus vertex out of range");
    }
    // Chaos hook: the admission machinery itself can stall or error (an
    // overloaded front door). An injected drop behaves like backpressure.
    if (options_.fault_injector != nullptr) {
      resilience::FaultDecision fault = options_.fault_injector->Decide(
          resilience::FaultPoint::kAdmission);
      SleepMs(fault.latency_ms);
      if (!fault.status.ok()) {
        rejected_total_->Increment();
        return fault.status;
      }
    }
  }

  std::string key;
  std::optional<QueryResult> hit;
  {
    obs::TraceSpan span(trace, "cache_probe");
    key = CacheKey(request);
    // Cache probe before any pool dispatch: a hit is served synchronously on
    // the submitting thread.
    hit = ProbeCache(key);
  }
  if (hit.has_value()) {
    QueryResult result = std::move(*hit);
    result.from_cache = true;
    result.coalesced = false;
    result.match_steps = 0;
    result.match_slices = 0;
    result.latency_ms = admitted.ElapsedMillis();
    admitted_total_->Increment();
    RecordCompletion(result, std::move(trace));
    std::promise<QueryResult> ready;
    std::future<QueryResult> future = ready.get_future();
    ready.set_value(std::move(result));
    return future;
  }

  // Priority load shedding applies only to requests that would occupy a
  // worker: cache hits above were served for free, and shedding cheap-to-
  // serve traffic would lower availability for nothing. Coalesced waiters
  // are NOT free — they hold memory and fan-out work — so they pass through
  // this gate and count toward its occupancy.
  if (Status shed = AdmitAtPriority(request.priority); !shed.ok()) {
    rejected_total_->Increment();
    return shed;
  }

  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> future = promise->get_future();

  // A hedge never joins the in-flight table: its primary usually leads the
  // entry for the same key, and a parked hedge would wait on the very
  // execution it is racing (see docs/sharding.md).
  const bool coalesce =
      options_.enable_coalescing && !key.empty() && !request.hedge;
  if (coalesce) {
    InflightWaiter waiter{std::move(request), promise, admitted, Stopwatch(),
                          std::move(trace)};
    if (inflight_.JoinOrLead(key, &waiter) == InflightTable::Role::kWaiter) {
      // Single-flight: an identical request is already queued or running.
      // This one parked inside the table; the leader's fan-out resolves the
      // promise. The deposit funds a potential re-execution if the leader's
      // result turns out unshareable.
      waiter_budget_.OnRequest();
      admitted_total_->Increment();
      return future;
    }
    // Leader: take the request back and execute it for everyone.
    request = std::move(waiter.request);
    trace = std::move(waiter.trace);
  }

  Status submitted =
      Dispatch(std::make_shared<QueryRequest>(std::move(request)), key,
               admitted, std::move(trace), promise, /*lead=*/coalesce);
  if (!submitted.ok()) {
    rejected_total_->Increment();
    return submitted;
  }
  admitted_total_->Increment();
  return future;
}

Status QueryService::Dispatch(std::shared_ptr<QueryRequest> request,
                              std::string key, Stopwatch admitted,
                              obs::RequestTrace trace,
                              std::shared_ptr<std::promise<QueryResult>> promise,
                              bool lead) {
  Stopwatch queued;
  Status submitted = pool_.Submit(
      [this, request, key, admitted, queued, promise, lead,
       trace = std::move(trace)]() mutable {
        trace.stages.push_back({"queue_wait", queued.ElapsedMillis()});
        QueryResult result = ExecuteOnWorker(*request, key, admitted, trace);
        result.latency_ms = admitted.ElapsedMillis();
        // Fan out before resolving the leader's own promise: a caller woken
        // by the leader future must observe the table entry already retired.
        if (lead) FanOut(key, result);
        RecordCompletion(result, std::move(trace));
        promise->set_value(std::move(result));
      });
  if (!submitted.ok() && lead) AbortLead(key, submitted);
  return submitted;
}

QueryResult QueryService::ExecuteOnWorker(const QueryRequest& request,
                                          const std::string& key,
                                          const Stopwatch& admitted,
                                          obs::RequestTrace& trace) {
  QueryResult result;
  // Second probe at dequeue: an identical request admitted just ahead of
  // this one may have populated the cache while this one queued
  // (coalescing-lite; collapses duplicates that arrive after their leader
  // finished). A hit also rescues requests whose deadline expired in the
  // queue — serving it is free.
  std::optional<QueryResult> hit;
  {
    obs::TraceSpan span(trace, "dequeue_probe");
    hit = ProbeCache(key);
  }
  if (hit.has_value()) {
    result = std::move(*hit);
    result.from_cache = true;
    result.coalesced = false;
    result.match_steps = 0;
    result.match_slices = 0;
    return result;
  }
  obs::TraceSpan span(trace, "execute");
  // Chaos hook: the worker executing this request can stall, fail, or lose
  // the task. A drop still resolves the promise — the service models the
  // *detection* of a lost task (a real one would hang the future forever,
  // which is exactly the outage mode the chaos suite asserts cannot happen).
  resilience::FaultDecision fault;
  if (options_.fault_injector != nullptr) {
    fault =
        options_.fault_injector->Decide(resilience::FaultPoint::kExecutor);
    SleepMs(fault.latency_ms);
  }
  if (!fault.status.ok()) {
    result.status = fault.status;
  } else {
    backend_executions_total_->Increment();
    result = Run(request, admitted);
  }
  span.Stop();
  // Partial (truncated) and errored results are never cached: a later
  // identical request must get the chance to compute the full answer.
  if (result.status.ok() && !result.truncated && !key.empty() &&
      options_.cache_capacity > 0) {
    cache_.Put(key, result);
  }
  return result;
}

void QueryService::FanOut(const std::string& key, const QueryResult& leader) {
  std::vector<InflightWaiter> waiters = inflight_.Complete(key);
  for (InflightWaiter& waiter : waiters) {
    // Mid-flight invalidation check: if any epoch this waiter depends on
    // moved while the leader ran, its current key no longer matches the key
    // it coalesced under — the leader's result may be stale, so the waiter
    // detaches and re-executes against fresh data. Correctness-driven, so it
    // is exempt from the retry budget.
    if (CacheKey(waiter.request) != key) {
      inflight_.RecordDetach();
      Reexecute(std::move(waiter), /*budgeted=*/false, leader);
      continue;
    }
    ResolveWaiter(std::move(waiter), leader);
  }
}

void QueryService::ResolveWaiter(InflightWaiter waiter,
                                 const QueryResult& leader) {
  // Shareable: any full OK result (even with a waiter whose own deadline
  // expired in flight — serving a ready answer is free, same rationale as
  // the dequeue-probe rescue), or a partial one the waiter opted into via
  // allow_partial. Leader errors and rejected partials re-execute instead,
  // within the retry budget.
  const bool shareable =
      leader.status.ok() && (!leader.truncated || waiter.request.allow_partial);
  if (!shareable) {
    Reexecute(std::move(waiter), /*budgeted=*/true, leader);
    return;
  }
  QueryResult result = leader;
  result.coalesced = true;
  result.match_steps = 0;
  result.match_slices = 0;
  result.latency_ms = waiter.admitted.ElapsedMillis();
  inflight_.RecordFanout(1);
  inflight_.ObserveWaiterWait(waiter.attached.ElapsedMillis());
  RecordCompletion(result, std::move(waiter.trace));
  waiter.promise->set_value(std::move(result));
}

void QueryService::Reexecute(InflightWaiter waiter, bool budgeted,
                             const QueryResult& leader) {
  inflight_.ObserveWaiterWait(waiter.attached.ElapsedMillis());
  // The outcome a waiter inherits when its re-execution cannot run. A
  // rejected partial becomes the deadline outcome with the partial counts
  // attached; otherwise the leader's own status stands.
  auto leader_outcome = [&leader]() {
    QueryResult result;
    result.coalesced = true;
    if (leader.status.ok() && leader.truncated) {
      result.status = Status::DeadlineExceeded(
          "coalesced leader returned a partial result");
      result.embedding_count = leader.embedding_count;
      result.matched_graphs = leader.matched_graphs;
      result.truncated = true;
    } else {
      result.status = leader.status;
    }
    return result;
  };
  if (budgeted && !waiter_budget_.TryConsumeRetry()) {
    // Budget exhausted: re-running every waiter of a failing leader would
    // amplify a coalesced burst back into the thundering herd coalescing
    // absorbed. Propagate the leader's outcome instead.
    inflight_.RecordReexecDenied();
    QueryResult result = leader_outcome();
    result.latency_ms = waiter.admitted.ElapsedMillis();
    RecordCompletion(result, std::move(waiter.trace));
    waiter.promise->set_value(std::move(result));
    return;
  }
  inflight_.RecordReexec();
  const char* kind = KindName(waiter.request.kind);
  auto promise = waiter.promise;
  Stopwatch admitted = waiter.admitted;
  // Recompute the key (a detach means it changed) and dispatch as a plain
  // non-leading task: re-executions never re-join the in-flight table, so a
  // persistently failing leader cannot grow retry chains.
  std::string key = CacheKey(waiter.request);
  Status submitted =
      Dispatch(std::make_shared<QueryRequest>(std::move(waiter.request)), key,
               admitted, std::move(waiter.trace), promise, /*lead=*/false);
  if (!submitted.ok()) {
    // Pool full or shut down; the promise must still resolve. The request
    // was admitted, so a retroactive rejection would be dishonest: a
    // budgeted waiter inherits the leader's outcome (same contract as
    // budget denial); a detached waiter cannot (the leader's result is
    // stale for it) and reports the dispatch failure. The trace moved into
    // the dead dispatch, so record a minimal fresh one.
    QueryResult result = budgeted ? leader_outcome() : QueryResult{};
    if (!budgeted) result.status = submitted;
    result.coalesced = true;
    result.latency_ms = admitted.ElapsedMillis();
    obs::RequestTrace trace;
    trace.id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
    trace.kind = kind;
    RecordCompletion(result, std::move(trace));
    promise->set_value(std::move(result));
  }
}

void QueryService::AbortLead(const std::string& key, const Status& status) {
  // The leader never entered the queue, so its entry must be retired here or
  // later duplicates would park on a leader that will never fan out. Waiters
  // that managed to attach in the meantime get the same rejection the leader
  // got — admission backpressure, not a computed answer.
  std::vector<InflightWaiter> waiters = inflight_.Complete(key);
  for (InflightWaiter& waiter : waiters) {
    QueryResult result;
    result.status = status;
    result.coalesced = true;
    result.latency_ms = waiter.admitted.ElapsedMillis();
    inflight_.ObserveWaiterWait(waiter.attached.ElapsedMillis());
    RecordCompletion(result, std::move(waiter.trace));
    waiter.promise->set_value(std::move(result));
  }
}

QueryResult QueryService::Execute(QueryRequest request) {
  auto submitted = Submit(std::move(request));
  if (!submitted.ok()) {
    QueryResult result;
    result.status = submitted.status();
    return result;
  }
  return submitted.value().get();
}

QueryResult QueryService::Run(const QueryRequest& request,
                              const Stopwatch& admitted) {
  if (DeadlinePassed(request, admitted)) {
    QueryResult result;
    if (request.allow_partial && request.kind == QueryKind::kMatchCount) {
      // Graceful degradation: an empty answer is a valid (trivial) subset.
      result.truncated = true;
      result.status = Status::OK();
    } else {
      result.status = Status::DeadlineExceeded(
          "deadline expired before execution started");
    }
    return result;
  }
  return request.kind == QueryKind::kSuggest ? RunSuggest(request)
                                             : RunMatch(request, admitted);
}

QueryResult QueryService::RunMatch(const QueryRequest& request,
                                   const Stopwatch& admitted) {
  QueryResult result;
  // Everything accumulated below is real: counted embeddings exist and a
  // graph enters matched_graphs only once >= 1 embedding was found, so a
  // truncated result is always a subset of the fault-free answer.
  auto truncate = [&](const char* why) {
    result.truncated = true;
    result.status = request.allow_partial ? Status::OK()
                                          : Status::DeadlineExceeded(why);
  };
  auto match_one = [&](const Graph& target) -> Status {
    if (CancelRequested(request)) {
      return Status::Cancelled("request cancelled between targets");
    }
    if (DeadlinePassed(request, admitted)) {
      return Status::DeadlineExceeded("deadline expired between targets");
    }
    uint64_t count = 0;
    Status s = CountWithDeadline(request.pattern, target, request, admitted,
                                 &count, &result);
    if (s.ok() || s.code() == StatusCode::kDeadlineExceeded) {
      // On deadline, `count` is the partial lower bound from the final
      // slice — still a subset of the true answer.
      result.embedding_count += count;
      if (count > 0) result.matched_graphs.push_back(target.id());
    }
    return s;
  };
  auto match_many = [&](const Graph& target) -> bool {
    Status s = match_one(target);
    if (s.code() == StatusCode::kDeadlineExceeded) {
      truncate("deadline expired mid-collection");
      return false;
    }
    if (!s.ok()) {  // injected vf2_slice fault
      result.status = s;
      return false;
    }
    return true;
  };

  if (!request.targets.empty()) {
    for (GraphId id : request.targets) {
      if (!match_many(db_.Get(id))) return result;
    }
  } else if (request.target == kAllGraphs) {
    for (const Graph& target : db_.graphs()) {
      if (!match_many(target)) return result;
    }
  } else {
    Status s = match_one(db_.Get(request.target));
    if (s.code() == StatusCode::kDeadlineExceeded) {
      truncate("deadline expired while matching");
      return result;
    }
    if (!s.ok()) {
      result.status = s;
      return result;
    }
  }
  result.status = Status::OK();
  return result;
}

QueryResult QueryService::RunSuggest(const QueryRequest& request) {
  QueryResult result;
  result.suggestions = suggestions_.SuggestNextEdges(
      request.pattern, request.focus, request.top_k);
  result.status = Status::OK();
  return result;
}

Status QueryService::CountWithDeadline(const Graph& pattern,
                                       const Graph& target,
                                       const QueryRequest& request,
                                       const Stopwatch& admitted,
                                       uint64_t* count, QueryResult* result) {
  // Chaos hook: one matching slice can be slow (injected latency eats the
  // deadline, the slow-shard mode) or fail outright.
  auto slice_fault = [&]() -> Status {
    if (options_.fault_injector == nullptr) return Status::OK();
    resilience::FaultDecision fault = options_.fault_injector->Decide(
        resilience::FaultPoint::kVf2Slice);
    SleepMs(fault.latency_ms);
    if (fault.dropped) {
      return Status::Unavailable("injected slice drop at vf2_slice");
    }
    return fault.status;
  };

  MatchOptions opts = options_.match_options;
  opts.max_embeddings = request.max_embeddings;
  // One index fetch per (request, target): slices reuse the same immutable
  // snapshot, and the cache revalidates against the database's content
  // version so a maintainer rewrite of this graph forces a rebuild here.
  std::shared_ptr<const MatchIndex> index;
  if (options_.use_match_index) {
    opts.use_index = true;
    index = index_cache_.Get(db_, target.id());
  }
  if (request.deadline_ms <= 0) {
    opts.max_steps = 0;
    if (CancelRequested(request)) {
      return Status::Cancelled("request cancelled before matching");
    }
    VQI_RETURN_IF_ERROR(slice_fault());
    SubgraphMatcher matcher(pattern, target, index, opts);
    *count = matcher.CountEmbeddings();
    result->match_steps += matcher.steps();
    result->match_slices += 1;
    return Status::OK();
  }
  // The matcher cannot pause/resume, so the cooperative budget hook
  // (max_steps) is applied in exponentially growing slices: re-running from
  // scratch at double the cap costs at most 2x the final successful run and
  // bounds how far past the deadline a worker can overshoot.
  for (uint64_t slice = kInitialStepSlice;; slice *= 2) {
    // Max_steps poisoning: a cancelled request treats its remaining step
    // budget as exhausted and abandons the count at this slice boundary.
    if (CancelRequested(request)) {
      return Status::Cancelled("request cancelled at slice boundary");
    }
    VQI_RETURN_IF_ERROR(slice_fault());
    opts.max_steps = slice;
    SubgraphMatcher matcher(pattern, target, index, opts);
    // Each slice recounts from scratch, so overwrite rather than accumulate:
    // after a deadline the last value is the best lower bound found.
    *count = matcher.CountEmbeddings();
    result->match_steps += matcher.steps();
    result->match_slices += 1;
    if (!matcher.hit_step_limit()) return Status::OK();
    if (admitted.ElapsedMillis() >= request.deadline_ms) {
      return Status::DeadlineExceeded("deadline expired mid-match");
    }
  }
}

Status QueryService::AdmitAtPriority(RequestPriority priority) {
  if (priority == RequestPriority::kInteractive ||
      options_.shed_high_water >= 1.0) {
    return Status::OK();
  }
  double high_water = std::max(0.0, options_.shed_high_water);
  double capacity = static_cast<double>(pool_.queue_capacity());
  // Background sheds at the high-water mark, normal halfway between the
  // mark and a full queue — the closer the queue is to full, the more
  // important the traffic must be to enter it.
  double mark = priority == RequestPriority::kBackground
                    ? high_water * capacity
                    : (high_water + 1.0) / 2.0 * capacity;
  // Occupancy counts attached coalesced waiters alongside queued tasks: a
  // flood of duplicates executes once but still holds N promises, traces,
  // and fan-out work, so it must not bypass overload protection.
  double occupancy =
      static_cast<double>(pool_.QueueDepth() + inflight_.TotalWaiters());
  if (occupancy < mark) return Status::OK();
  if (priority == RequestPriority::kBackground) {
    shed_background_total_->Increment();
  } else {
    shed_normal_total_->Increment();
  }
  return Status::Unavailable(
      std::string("load shed: queue over the ") +
      RequestPriorityName(priority) + " high-water mark");
}

std::optional<QueryResult> QueryService::ProbeCache(const std::string& key) {
  // cache_capacity 0 disables the cache but not coalescing, which still
  // computes keys — so the gate lives here, not in CacheKey.
  if (key.empty() || options_.cache_capacity == 0) return std::nullopt;
  if (options_.fault_injector != nullptr) {
    resilience::FaultDecision fault = options_.fault_injector->Decide(
        resilience::FaultPoint::kCacheProbe);
    SleepMs(fault.latency_ms);
    if (!fault.status.ok()) {
      // A broken cache degrades to a miss — it must never fail a request.
      cache_probe_faults_total_->Increment();
      return std::nullopt;
    }
  }
  return cache_.Get(key);
}

void QueryService::RecordCompletion(const QueryResult& result,
                                    obs::RequestTrace trace) {
  completed_total_->Increment();
  if (result.status.code() == StatusCode::kDeadlineExceeded) {
    deadline_exceeded_total_->Increment();
  }
  if (result.truncated) truncated_total_->Increment();
  latency_ms_->Observe(result.latency_ms);
  if (result.match_slices > 0) {
    match_steps_total_->Increment(result.match_steps);
    match_slices_total_->Increment(result.match_slices);
    slices_per_request_->Observe(static_cast<double>(result.match_slices));
  }
  trace.status = StatusCodeToString(result.status.code());
  trace.from_cache = result.from_cache;
  trace.total_ms = result.latency_ms;
  trace.match_steps = result.match_steps;
  trace.match_slices = result.match_slices;
  traces_.Record(std::move(trace));
}

ServiceStats QueryService::Snapshot() const {
  ServiceStats stats;
  stats.admitted = admitted_total_->Value();
  stats.completed = completed_total_->Value();
  stats.rejected = rejected_total_->Value();
  stats.shed = shed_background_total_->Value() + shed_normal_total_->Value();
  stats.deadline_exceeded = deadline_exceeded_total_->Value();
  stats.truncated = truncated_total_->Value();
  CacheStats cache_stats = cache_.GetStats();
  stats.cache_hits = cache_stats.hits;
  stats.cache_misses = cache_stats.misses;
  stats.cache_evictions = cache_stats.evictions;
  stats.backend_executions = backend_executions_total_->Value();
  stats.coalesce_leaders = inflight_.leaders();
  stats.coalesce_waiters = inflight_.waiters();
  stats.coalesce_fanout = inflight_.fanout();
  stats.coalesce_detached = inflight_.detached();
  obs::HistogramSnapshot latency = latency_ms_->Snapshot();
  stats.p50_latency_ms = latency.Quantile(0.50);
  stats.p99_latency_ms = latency.Quantile(0.99);
  stats.index_builds = index_cache_.builds();
  return stats;
}

}  // namespace vqi
