#include "service/query_service.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "match/canonical.h"

namespace vqi {
namespace {

// Canonicalization (match/canonical.h) enforces this vertex bound; larger
// patterns are served uncached rather than rejected.
constexpr size_t kMaxCacheableVertices = 64;

// First cooperative step slice for deadline-bounded matching. Slices double
// until the matcher finishes or the wall clock passes the deadline, so the
// overshoot past a deadline is bounded by one slice and total work is at most
// twice the final slice.
constexpr uint64_t kInitialStepSlice = 1u << 14;

bool DeadlinePassed(const QueryRequest& request, const Stopwatch& admitted) {
  return request.deadline_ms > 0 &&
         admitted.ElapsedMillis() >= request.deadline_ms;
}

const char* KindName(QueryKind kind) {
  return kind == QueryKind::kSuggest ? "suggest" : "match";
}

}  // namespace

QueryService::QueryService(const GraphDatabase& db, QueryServiceOptions options)
    : db_(db),
      options_(options),
      traces_(options.trace_capacity),
      suggestions_(SuggestionIndex::Build(db)),
      cache_(std::max<size_t>(1, options.cache_capacity),
             std::max<size_t>(1, options.cache_shards)),
      pool_(ThreadPoolOptions{options.num_threads, options.queue_capacity,
                              &metrics_}) {
  cache_.RegisterMetrics(metrics_);
  admitted_total_ = &metrics_.GetCounter(
      "vqi_requests_admitted_total", "Requests accepted past admission.");
  completed_total_ = &metrics_.GetCounter(
      "vqi_requests_completed_total", "Requests resolved (any status).");
  rejected_total_ = &metrics_.GetCounter(
      "vqi_requests_rejected_total",
      "Admission failures due to a full queue (backpressure).");
  deadline_exceeded_total_ = &metrics_.GetCounter(
      "vqi_requests_deadline_exceeded_total",
      "Requests that completed with kDeadlineExceeded.");
  cache_invalidations_total_ = &metrics_.GetCounter(
      "vqi_cache_invalidations_total",
      "InvalidateCache() epoch bumps (e.g. maintenance batches).");
  match_steps_total_ = &metrics_.GetCounter(
      "vqi_match_steps_total", "VF2 recursion steps across all requests.");
  match_slices_total_ = &metrics_.GetCounter(
      "vqi_match_slices_total",
      "Cooperative deadline slices run across all requests.");
  latency_ms_ = &metrics_.GetHistogram(
      "vqi_request_latency_ms", "Admission-to-completion request latency.",
      obs::Histogram::DefaultLatencyBoundsMs());
  slices_per_request_ = &metrics_.GetHistogram(
      "vqi_match_slices_per_request",
      "VF2 invocations one match request needed: one per target graph, plus "
      "one per deadline-slice retry.",
      obs::Histogram::ExponentialBounds(1, 2, 12));
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { pool_.Shutdown(); }

void QueryService::InvalidateCache() {
  cache_epoch_.fetch_add(1, std::memory_order_relaxed);
  cache_invalidations_total_->Increment();
}

std::string QueryService::CacheKey(const QueryRequest& request) const {
  if (options_.cache_capacity == 0) return "";
  if (request.pattern.NumVertices() > kMaxCacheableVertices) return "";
  // The epoch prefix implements InvalidateCache(): bumping it reroutes every
  // lookup away from pre-bump entries, which then age out via LRU.
  std::string key = "e";
  key += std::to_string(cache_epoch_.load(std::memory_order_relaxed));
  key += '|';
  if (request.kind == QueryKind::kSuggest) {
    // Suggestions depend only on the focus vertex's label and k.
    key += "s|";
    key += std::to_string(request.pattern.VertexLabel(request.focus));
    key += '|';
    key += std::to_string(request.top_k);
    return key;
  }
  const MatchOptions& mo = options_.match_options;
  key += "m|";
  key += CanonicalCode(request.pattern);
  key += '|';
  key += std::to_string(request.target);
  key += '|';
  key += std::to_string(request.max_embeddings);
  key += '|';
  key += mo.induced ? '1' : '0';
  key += mo.match_vertex_labels ? '1' : '0';
  key += mo.match_edge_labels ? '1' : '0';
  key += mo.dummy_is_wildcard ? '1' : '0';
  return key;
}

StatusOr<std::future<QueryResult>> QueryService::Submit(QueryRequest request) {
  Stopwatch admitted;
  obs::RequestTrace trace;
  trace.id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  trace.kind = KindName(request.kind);
  {
    obs::TraceSpan span(trace, "admission");
    if (request.pattern.Empty()) {
      return Status::InvalidArgument("query pattern is empty");
    }
    if (request.target != kAllGraphs && !db_.Contains(request.target)) {
      return Status::NotFound("unknown target graph id " +
                              std::to_string(request.target));
    }
    if (request.kind == QueryKind::kSuggest &&
        request.focus >= request.pattern.NumVertices()) {
      return Status::InvalidArgument("focus vertex out of range");
    }
  }

  std::string key;
  std::optional<QueryResult> hit;
  {
    obs::TraceSpan span(trace, "cache_probe");
    key = CacheKey(request);
    // Cache probe before any pool dispatch: a hit is served synchronously on
    // the submitting thread.
    if (!key.empty()) hit = cache_.Get(key);
  }
  if (hit.has_value()) {
    QueryResult result = std::move(*hit);
    result.from_cache = true;
    result.match_steps = 0;
    result.match_slices = 0;
    result.latency_ms = admitted.ElapsedMillis();
    admitted_total_->Increment();
    RecordCompletion(result, std::move(trace));
    std::promise<QueryResult> ready;
    std::future<QueryResult> future = ready.get_future();
    ready.set_value(std::move(result));
    return future;
  }

  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> future = promise->get_future();
  auto shared_request = std::make_shared<QueryRequest>(std::move(request));
  Stopwatch queued;
  Status submitted = pool_.Submit(
      [this, promise, shared_request, key = std::move(key), admitted, queued,
       trace = std::move(trace)]() mutable {
        trace.stages.push_back({"queue_wait", queued.ElapsedMillis()});
        QueryResult result;
        // Second probe at dequeue: an identical request admitted just ahead
        // of this one may have populated the cache while this one queued
        // (coalescing-lite; repeated-query bursts collapse after the first
        // computation). A hit also rescues requests whose deadline expired
        // in the queue — serving it is free.
        std::optional<QueryResult> hit;
        {
          obs::TraceSpan span(trace, "dequeue_probe");
          if (!key.empty()) hit = cache_.Get(key);
        }
        if (hit.has_value()) {
          result = std::move(*hit);
          result.from_cache = true;
          result.match_steps = 0;
          result.match_slices = 0;
        } else {
          obs::TraceSpan span(trace, "execute");
          result = Run(*shared_request, admitted);
          span.Stop();
          if (result.status.ok() && !key.empty()) {
            cache_.Put(key, result);
          }
        }
        result.latency_ms = admitted.ElapsedMillis();
        RecordCompletion(result, std::move(trace));
        promise->set_value(std::move(result));
      });
  if (!submitted.ok()) {
    rejected_total_->Increment();
    return submitted;
  }
  admitted_total_->Increment();
  return future;
}

QueryResult QueryService::Execute(QueryRequest request) {
  auto submitted = Submit(std::move(request));
  if (!submitted.ok()) {
    QueryResult result;
    result.status = submitted.status();
    return result;
  }
  return submitted.value().get();
}

QueryResult QueryService::Run(const QueryRequest& request,
                              const Stopwatch& admitted) {
  if (DeadlinePassed(request, admitted)) {
    QueryResult result;
    result.status = Status::DeadlineExceeded(
        "deadline expired before execution started");
    return result;
  }
  return request.kind == QueryKind::kSuggest ? RunSuggest(request)
                                             : RunMatch(request, admitted);
}

QueryResult QueryService::RunMatch(const QueryRequest& request,
                                   const Stopwatch& admitted) {
  QueryResult result;
  auto match_one = [&](const Graph& target) -> bool {
    if (DeadlinePassed(request, admitted)) return false;
    uint64_t count = 0;
    if (!CountWithDeadline(request.pattern, target, request, admitted, &count,
                           &result)) {
      return false;
    }
    result.embedding_count += count;
    if (count > 0) result.matched_graphs.push_back(target.id());
    return true;
  };

  if (request.target == kAllGraphs) {
    for (const Graph& target : db_.graphs()) {
      if (!match_one(target)) {
        result.status =
            Status::DeadlineExceeded("deadline expired mid-collection");
        return result;
      }
    }
  } else if (!match_one(db_.Get(request.target))) {
    result.status = Status::DeadlineExceeded("deadline expired while matching");
    return result;
  }
  result.status = Status::OK();
  return result;
}

QueryResult QueryService::RunSuggest(const QueryRequest& request) {
  QueryResult result;
  result.suggestions = suggestions_.SuggestNextEdges(
      request.pattern, request.focus, request.top_k);
  result.status = Status::OK();
  return result;
}

bool QueryService::CountWithDeadline(const Graph& pattern, const Graph& target,
                                     const QueryRequest& request,
                                     const Stopwatch& admitted,
                                     uint64_t* count, QueryResult* result) {
  MatchOptions opts = options_.match_options;
  opts.max_embeddings = request.max_embeddings;
  if (request.deadline_ms <= 0) {
    opts.max_steps = 0;
    SubgraphMatcher matcher(pattern, target, opts);
    *count = matcher.CountEmbeddings();
    result->match_steps += matcher.steps();
    result->match_slices += 1;
    return true;
  }
  // The matcher cannot pause/resume, so the cooperative budget hook
  // (max_steps) is applied in exponentially growing slices: re-running from
  // scratch at double the cap costs at most 2x the final successful run and
  // bounds how far past the deadline a worker can overshoot.
  for (uint64_t slice = kInitialStepSlice;; slice *= 2) {
    opts.max_steps = slice;
    SubgraphMatcher matcher(pattern, target, opts);
    *count = matcher.CountEmbeddings();
    result->match_steps += matcher.steps();
    result->match_slices += 1;
    if (!matcher.hit_step_limit()) return true;
    if (admitted.ElapsedMillis() >= request.deadline_ms) return false;
  }
}

void QueryService::RecordCompletion(const QueryResult& result,
                                    obs::RequestTrace trace) {
  completed_total_->Increment();
  if (result.status.code() == StatusCode::kDeadlineExceeded) {
    deadline_exceeded_total_->Increment();
  }
  latency_ms_->Observe(result.latency_ms);
  if (result.match_slices > 0) {
    match_steps_total_->Increment(result.match_steps);
    match_slices_total_->Increment(result.match_slices);
    slices_per_request_->Observe(static_cast<double>(result.match_slices));
  }
  trace.status = StatusCodeToString(result.status.code());
  trace.from_cache = result.from_cache;
  trace.total_ms = result.latency_ms;
  trace.match_steps = result.match_steps;
  trace.match_slices = result.match_slices;
  traces_.Record(std::move(trace));
}

ServiceStats QueryService::Snapshot() const {
  ServiceStats stats;
  stats.admitted = admitted_total_->Value();
  stats.completed = completed_total_->Value();
  stats.rejected = rejected_total_->Value();
  stats.deadline_exceeded = deadline_exceeded_total_->Value();
  CacheStats cache_stats = cache_.GetStats();
  stats.cache_hits = cache_stats.hits;
  stats.cache_misses = cache_stats.misses;
  stats.cache_evictions = cache_stats.evictions;
  obs::HistogramSnapshot latency = latency_ms_->Snapshot();
  stats.p50_latency_ms = latency.Quantile(0.50);
  stats.p99_latency_ms = latency.Quantile(0.99);
  return stats;
}

}  // namespace vqi
