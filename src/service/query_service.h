#ifndef VQLIB_SERVICE_QUERY_SERVICE_H_
#define VQLIB_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/field_count.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/stopwatch.h"
#include "graph/graph.h"
#include "graph/graph_database.h"
#include "match/candidate_index.h"
#include "match/vf2.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/inflight_table.h"
#include "service/lru_cache.h"
#include "service/query_types.h"
#include "service/resilience/fault_injector.h"
#include "service/resilience/retry.h"
#include "service/thread_pool.h"
#include "vqi/suggestion.h"

namespace vqi {

/// Point-in-time counters of a QueryService. The latency percentiles are
/// estimated from the vqi_request_latency_ms histogram (fixed memory however
/// long the service runs); the full instrument set is on metrics().
struct ServiceStats {
  uint64_t admitted = 0;           ///< requests accepted into the queue
  uint64_t completed = 0;          ///< futures resolved (any status)
  uint64_t rejected = 0;           ///< admission failures (queue full)
  uint64_t shed = 0;               ///< rejected by priority load shedding
  uint64_t deadline_exceeded = 0;  ///< completed with kDeadlineExceeded
  uint64_t truncated = 0;          ///< completed with a partial (truncated) answer
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  /// Requests that actually reached the matcher / suggestion backend — the
  /// number single-flight coalescing drives toward the unique-query count on
  /// duplicate-heavy workloads (cache hits and coalesced waiters are zero
  /// backend work).
  uint64_t backend_executions = 0;
  uint64_t coalesce_leaders = 0;   ///< requests that led a single-flight entry
  uint64_t coalesce_waiters = 0;   ///< requests attached to an in-flight leader
  uint64_t coalesce_fanout = 0;    ///< waiter responses served from a leader
  uint64_t coalesce_detached = 0;  ///< waiters detached by mid-flight invalidation
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
  /// MatchIndex builds (lazy, content-version driven). Steady state is one
  /// per distinct target graph; growth after that means maintenance batches
  /// are rewriting graphs (each rewrite forces one rebuild on next use).
  uint64_t index_builds = 0;
};

// ServiceStats is positionally brace-initialized by tests and tools;
// inserting a field mid-struct silently shifts every later initializer.
// Append only, then update this count after auditing the call sites.
static_assert(FieldCount<ServiceStats>() == 17,
              "ServiceStats changed shape: append fields at the end, audit "
              "brace initializers, then update this count");

/// Sizing and semantics knobs for a QueryService.
struct QueryServiceOptions {
  size_t num_threads = 4;
  size_t queue_capacity = 256;
  /// Total result-cache entries (0 disables the cache entirely).
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;
  /// Matching semantics applied to every kMatchCount request. The step cap
  /// is managed internally by the deadline logic; leave max_steps at 0.
  MatchOptions match_options = {};
  /// Completed-request traces retained in the ring buffer (0 disables
  /// tracing).
  size_t trace_capacity = 256;
  /// Queue-depth fraction at which priority load shedding starts: at
  /// >= shed_high_water * queue_capacity kBackground requests are shed, at
  /// >= halfway between the high-water mark and a full queue kNormal
  /// requests are shed too. kInteractive requests are only rejected by a
  /// full queue. 1.0 disables shedding. Occupancy counts queued tasks plus
  /// attached coalesced waiters.
  double shed_high_water = 0.75;
  /// Chaos hook: when set, the service consults this injector at its named
  /// fault points (cache_probe, admission, executor, vf2_slice — see
  /// docs/resilience.md). Must outlive the service; its metrics are
  /// registered into the service's registry. Null = no injection.
  resilience::FaultInjector* fault_injector = nullptr;
  /// Single-flight request coalescing: concurrent requests sharing a cache
  /// key collapse onto one backend execution whose result fans out to every
  /// waiter (see docs/service.md). Works with the cache disabled — the
  /// canonical key is still computed for coalescing. Patterns too large to
  /// canonicalize are neither cached nor coalesced.
  bool enable_coalescing = true;
  /// Token-bucket budget for *error-triggered* waiter re-execution (leader
  /// failed, or returned a partial a strict waiter rejects): each attached
  /// waiter deposits `ratio` tokens, each re-execution withdraws one — so a
  /// failing leader cannot amplify a coalesced burst back into a full
  /// thundering herd. Detach re-executions (mid-flight invalidation) are
  /// exempt: they are required for correctness, never load mitigation.
  double coalesce_retry_ratio = 0.5;
  double coalesce_retry_capacity = 8.0;
  /// External metrics registry: when set, every instrument (service, pool,
  /// cache, coalescing, faults) is registered here instead of the service's
  /// own registry, so N shards can share one scrape. Must outlive the
  /// service. Null = the service owns its registry (the default, and what
  /// metrics() returns either way).
  obs::MetricsRegistry* metrics = nullptr;
  /// Labels applied to every instrument this service registers — e.g.
  /// {{"shard", "2"}} under a sharded router, so same-named series from N
  /// shards stay distinct in one registry. Instruments with their own label
  /// dimension (shed priority, cache_shard, pool) append it to these.
  obs::Labels metric_labels = {};
  /// Serve kMatchCount requests through the per-graph MatchIndex (CSR
  /// adjacency + candidate index, see docs/matching.md): indexes are built
  /// lazily per target graph, cached, and revalidated against
  /// GraphDatabase::ContentVersion, so maintainer batches that rewrite a
  /// graph force a rebuild on next use. Off = the legacy direct-adjacency
  /// oracle path. Appended field — keep last so existing aggregate
  /// initializers stay valid.
  bool use_match_index = true;
};

// Same positional-initializer guard as ServiceStats: every member carries
// an explicit default, so `QueryServiceOptions{}` is always the documented
// configuration and a mid-struct insertion fails here instead of silently
// reconfiguring brace-initialized call sites.
static_assert(FieldCount<QueryServiceOptions>() == 14,
              "QueryServiceOptions changed shape: append fields at the end, "
              "audit brace initializers, then update this count");

/// Concurrent serving layer over a GraphDatabase.
///
/// Request lifecycle: admission (validate + backpressure) → cache probe
/// (canonical-form key, so isomorphic re-draws of a query hit) → single-
/// flight coalescing (the first in-flight request for a key executes, its
/// concurrent duplicates attach as waiters and share the one result) →
/// dispatch to the worker pool → VF2 / suggestion-index execution under the
/// request's deadline → fan-out + stats recording. See docs/service.md.
///
/// Deadlines are honored cooperatively through the matcher's existing
/// max_steps budget hook: matching runs in exponentially growing step slices
/// and the wall clock is checked between slices and between target graphs,
/// so a runaway pattern cannot pin a worker past its budget by more than one
/// slice.
///
/// Every request is metered into the service's MetricsRegistry (see
/// docs/observability.md for the instrument catalog) and leaves a
/// stage-by-stage RequestTrace in a bounded ring of recent traces.
///
/// Thread-safe; the database must outlive the service. If the database is
/// mutated between requests (e.g. VqiMaintainer batches), call
/// InvalidateCache() afterwards so cached match counts cannot go stale.
class QueryService {
 public:
  explicit QueryService(const GraphDatabase& db,
                        QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits `request` and returns a future resolving to its result. Fails
  /// with kUnavailable when the queue is full (the caller should back off),
  /// kInvalidArgument for an empty pattern, kNotFound for an unknown target.
  StatusOr<std::future<QueryResult>> Submit(QueryRequest request);

  /// Convenience: Submit and wait. A rejected admission is reported through
  /// QueryResult::status.
  QueryResult Execute(QueryRequest request);

  /// Counters + latency percentiles over everything served so far.
  ServiceStats Snapshot() const;

  /// Invalidates every cached result by bumping the cache-key epoch: stale
  /// entries become unreachable immediately and age out via LRU. Cheap
  /// (no locks, no scan); call after any database mutation, e.g. from a
  /// VqiMaintainer batch listener. In-flight coalesced waiters whose key
  /// changes detach at fan-out and re-execute against fresh data.
  void InvalidateCache();

  /// Invalidates only the cached results that could depend on `graph_id`:
  /// single-target entries for that graph, explicit target-set entries whose
  /// set contains it, plus every whole-collection (kAllGraphs) and
  /// suggestion entry. Entries whose target (set) does not involve the graph
  /// survive, so a maintenance batch that touches one graph no longer
  /// cold-starts the whole cache.
  void InvalidateCacheKey(GraphId graph_id);

  /// The service's instrument registry (counters, gauges, histograms):
  /// the external one when QueryServiceOptions::metrics was set, otherwise
  /// the internally owned registry. Exposition: obs::ToPrometheusText /
  /// obs::ToJson.
  obs::MetricsRegistry& metrics() { return *registry_; }
  const obs::MetricsRegistry& metrics() const { return *registry_; }

  /// Ring buffer of recently completed request traces.
  const obs::TraceRecorder& traces() const { return traces_; }

  /// Graceful shutdown: admitted requests complete, new ones are rejected.
  void Shutdown();

  size_t num_threads() const { return pool_.num_threads(); }
  size_t queue_capacity() const { return pool_.queue_capacity(); }
  /// Worker-pool tasks admitted but not yet running (approximate under
  /// concurrency) — the live saturation signal /healthz reports.
  size_t QueueDepth() const { return pool_.QueueDepth(); }

 private:
  QueryResult Run(const QueryRequest& request, const Stopwatch& admitted);
  QueryResult RunMatch(const QueryRequest& request, const Stopwatch& admitted);
  QueryResult RunSuggest(const QueryRequest& request);
  /// Counts embeddings of `pattern` in `target` in cooperative step slices.
  /// Returns OK when the count completed, kDeadlineExceeded when the
  /// deadline expired first (*count then holds the partial lower bound from
  /// the final slice), or an injected vf2_slice fault status. Accumulates
  /// slice/step telemetry into `result`.
  Status CountWithDeadline(const Graph& pattern, const Graph& target,
                           const QueryRequest& request,
                           const Stopwatch& admitted, uint64_t* count,
                           QueryResult* result);
  /// Non-OK when priority load shedding rejects this request at the current
  /// occupancy — queued tasks plus attached coalesced waiters (see
  /// QueryServiceOptions::shed_high_water).
  Status AdmitAtPriority(RequestPriority priority);
  /// Cache probe behind the cache_probe fault point: an injected fault
  /// degrades to a miss (the cache is an optimization, never a failure
  /// source).
  std::optional<QueryResult> ProbeCache(const std::string& key);
  /// Epoch of one target graph's cached entries (see InvalidateCacheKey).
  /// Takes graph_epochs_mutex_ itself; must not be called with it held.
  uint64_t GraphEpoch(GraphId graph_id) const
      VQLIB_EXCLUDES(graph_epochs_mutex_);
  /// Cache/coalescing key, or "" when the request is uncacheable (pattern
  /// too large for canonicalization, or both the cache and coalescing are
  /// disabled). The key embeds every epoch the result depends on, so an
  /// invalidation reroutes lookups *and* lets fan-out detect stale waiters
  /// by recomputing the key.
  std::string CacheKey(const QueryRequest& request) const
      VQLIB_EXCLUDES(graph_epochs_mutex_);
  /// Enqueues the worker-side task for `request` (dequeue re-probe, execute,
  /// cache insert, fan-out when `lead`, completion recording). On a failed
  /// enqueue the leader's in-flight entry is aborted.
  Status Dispatch(std::shared_ptr<QueryRequest> request, std::string key,
                  Stopwatch admitted, obs::RequestTrace trace,
                  std::shared_ptr<std::promise<QueryResult>> promise,
                  bool lead);
  /// The worker-side body shared by leaders and waiter re-executions.
  QueryResult ExecuteOnWorker(const QueryRequest& request,
                              const std::string& key,
                              const Stopwatch& admitted,
                              obs::RequestTrace& trace);
  /// Resolves every waiter attached to `key` from the leader's result:
  /// detached (invalidated) waiters re-execute unbudgeted, full results and
  /// accepted partials fan out directly, everything else re-executes within
  /// the coalesce retry budget.
  void FanOut(const std::string& key, const QueryResult& leader);
  void ResolveWaiter(InflightWaiter waiter, const QueryResult& leader);
  void Reexecute(InflightWaiter waiter, bool budgeted,
                 const QueryResult& leader);
  /// Leader dispatch failed: answer any already-attached waiter with the
  /// same rejection.
  void AbortLead(const std::string& key, const Status& status);
  void RecordCompletion(const QueryResult& result, obs::RequestTrace trace);

  const GraphDatabase& db_;
  QueryServiceOptions options_;
  /// Lazy per-graph CSR + candidate indexes, revalidated against the
  /// database's content versions on every fetch (see docs/matching.md).
  MatchIndexCache index_cache_;
  // Declared before cache_/pool_: both register instruments here during
  // construction and hold references for their lifetime.
  obs::MetricsRegistry metrics_;
  // The registry in use: options_.metrics when provided, else &metrics_.
  obs::MetricsRegistry* registry_;
  obs::TraceRecorder traces_;
  SuggestionIndex suggestions_;
  ShardedLruCache<QueryResult> cache_;
  // Declared before pool_: leader tasks running during pool shutdown still
  // fan out through the table and the budget.
  InflightTable inflight_;
  resilience::RetryBudget waiter_budget_;
  ThreadPool pool_;

  std::atomic<uint64_t> cache_epoch_{0};
  std::atomic<uint64_t> next_trace_id_{0};

  // Per-graph cache epochs for InvalidateCacheKey. all_graphs_epoch_ covers
  // entries that depend on the entire collection (kAllGraphs matches and
  // suggestions); graph_epochs_ holds only graphs that were individually
  // invalidated (absent = epoch 0).
  std::atomic<uint64_t> all_graphs_epoch_{0};
  mutable Mutex graph_epochs_mutex_;
  std::unordered_map<GraphId, uint64_t> graph_epochs_
      VQLIB_GUARDED_BY(graph_epochs_mutex_);

  // Instrument handles resolved once in the constructor.
  obs::Counter* admitted_total_;
  obs::Counter* completed_total_;
  obs::Counter* rejected_total_;
  obs::Counter* shed_background_total_;
  obs::Counter* shed_normal_total_;
  obs::Counter* deadline_exceeded_total_;
  obs::Counter* truncated_total_;
  obs::Counter* cache_invalidations_total_;
  obs::Counter* cache_key_invalidations_total_;
  obs::Counter* cache_probe_faults_total_;
  obs::Counter* backend_executions_total_;
  obs::Counter* match_steps_total_;
  obs::Counter* match_slices_total_;
  obs::Histogram* latency_ms_;
  obs::Histogram* slices_per_request_;
};

}  // namespace vqi

#endif  // VQLIB_SERVICE_QUERY_SERVICE_H_
