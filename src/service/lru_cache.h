#ifndef VQLIB_SERVICE_LRU_CACHE_H_
#define VQLIB_SERVICE_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace vqi {

/// Aggregated counters across all shards of a ShardedLruCache.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;

  double hit_rate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// A sharded LRU map from string keys to values of type `V`.
///
/// Keys in the query service are canonical forms (match/canonical.h) combined
/// with the target graph id, so isomorphic queries — however the user drew
/// them — share one entry. Sharding by key hash keeps lock hold times short
/// under concurrent workers; each shard maintains its own recency list and
/// counters, so eviction is LRU *per shard* (the standard serving-cache
/// trade-off; use num_shards = 1 for strict global LRU).
template <typename V>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `num_shards`
  /// (each shard gets at least one slot).
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8) {
    VQI_CHECK_GT(capacity, 0u) << "cache capacity must be positive";
    if (num_shards == 0) num_shards = 1;
    if (num_shards > capacity) num_shards = capacity;
    size_t per_shard = (capacity + num_shards - 1) / num_shards;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  /// Returns a copy of the cached value and promotes the entry to
  /// most-recently-used, or nullopt on a miss.
  std::optional<V> Get(const std::string& key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      if (shard.misses_metric != nullptr) shard.misses_metric->Increment();
      return std::nullopt;
    }
    ++shard.hits;
    if (shard.hits_metric != nullptr) shard.hits_metric->Increment();
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites `key`, making it most-recently-used; evicts the
  /// least-recently-used entry of the shard when it is at capacity.
  void Put(const std::string& key, V value) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    if (shard.order.size() >= shard.capacity) {
      shard.index.erase(shard.order.back().first);
      shard.order.pop_back();
      ++shard.evictions;
      if (shard.evictions_metric != nullptr) {
        shard.evictions_metric->Increment();
      }
    }
    shard.order.emplace_front(key, std::move(value));
    shard.index[key] = shard.order.begin();
  }

  /// Drops every entry (counters are preserved).
  void Clear() {
    for (auto& shard : shards_) {
      MutexLock lock(&shard->mutex);
      shard->order.clear();
      shard->index.clear();
    }
  }

  /// Sums hit/miss/eviction counters and live entries across shards.
  CacheStats GetStats() const {
    CacheStats stats;
    for (const auto& shard : shards_) {
      MutexLock lock(&shard->mutex);
      stats.hits += shard->hits;
      stats.misses += shard->misses;
      stats.evictions += shard->evictions;
      stats.entries += shard->order.size();
    }
    return stats;
  }

  /// Registers per-shard hit/miss/eviction counters (label cache_shard="<i>")
  /// under `prefix` and mirrors every future event into them; counts
  /// accumulated before registration are carried over. The registry must
  /// outlive the cache. Per-shard series expose skew a summed counter would
  /// hide — one hot shard saturating its mutex looks healthy in aggregate.
  ///
  /// `extra_labels` is prepended to every series (including the `_shards`
  /// gauge). The label key is deliberately `cache_shard`, NOT `shard`: N
  /// caches owned by N service shards share one registry and pass
  /// {shard="<service shard>"} here, so the two dimensions must not collide.
  void RegisterMetrics(obs::MetricsRegistry& registry,
                       const std::string& prefix = "vqi_cache",
                       const obs::Labels& extra_labels = {}) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      obs::Labels labels = extra_labels;
      labels.emplace_back("cache_shard", std::to_string(i));
      obs::Counter& hits = registry.GetCounter(
          prefix + "_hits_total", "Result-cache hits.", labels);
      obs::Counter& misses = registry.GetCounter(
          prefix + "_misses_total", "Result-cache misses.", labels);
      obs::Counter& evictions = registry.GetCounter(
          prefix + "_evictions_total", "Result-cache LRU evictions.", labels);
      Shard& shard = *shards_[i];
      MutexLock lock(&shard.mutex);
      if (shard.hits > 0) hits.Increment(shard.hits);
      if (shard.misses > 0) misses.Increment(shard.misses);
      if (shard.evictions > 0) evictions.Increment(shard.evictions);
      shard.hits_metric = &hits;
      shard.misses_metric = &misses;
      shard.evictions_metric = &evictions;
    }
    registry
        .GetGauge(prefix + "_shards", "Number of cache shards.", extra_labels)
        .Set(static_cast<double>(shards_.size()));
  }

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    explicit Shard(size_t cap) : capacity(cap) {}

    mutable Mutex mutex;
    // front = most recently used.
    std::list<std::pair<std::string, V>> order VQLIB_GUARDED_BY(mutex);
    std::unordered_map<std::string,
                       typename std::list<std::pair<std::string, V>>::iterator>
        index VQLIB_GUARDED_BY(mutex);
    const size_t capacity;  ///< immutable after construction
    uint64_t hits VQLIB_GUARDED_BY(mutex) = 0;
    uint64_t misses VQLIB_GUARDED_BY(mutex) = 0;
    uint64_t evictions VQLIB_GUARDED_BY(mutex) = 0;
    // Optional mirrors into an obs registry (see RegisterMetrics); guarded by
    // `mutex` like the local counters.
    obs::Counter* hits_metric VQLIB_GUARDED_BY(mutex) = nullptr;
    obs::Counter* misses_metric VQLIB_GUARDED_BY(mutex) = nullptr;
    obs::Counter* evictions_metric VQLIB_GUARDED_BY(mutex) = nullptr;
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace vqi

#endif  // VQLIB_SERVICE_LRU_CACHE_H_
