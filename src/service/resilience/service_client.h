#ifndef VQLIB_SERVICE_RESILIENCE_SERVICE_CLIENT_H_
#define VQLIB_SERVICE_RESILIENCE_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "service/resilience/circuit_breaker.h"
#include "service/resilience/retry.h"

namespace vqi {
namespace resilience {

/// Knobs for a ServiceClient.
struct ServiceClientOptions {
  RetryPolicy retry;
  /// Retry-budget token deposit per first attempt (see RetryBudget). The
  /// client's steady-state load amplification is bounded by 1 + this ratio.
  double retry_budget_ratio = 0.1;
  /// Retry-budget burst allowance in tokens.
  double retry_budget_capacity = 10.0;
  CircuitBreakerOptions breaker;
  /// When false, the breaker never rejects (retry/budget still apply).
  bool enable_breaker = true;
  /// Seed for backoff jitter (deterministic tests fix it).
  uint64_t jitter_seed = 1;
  /// When false, backoff waits are computed and recorded but not slept —
  /// lets deterministic tests run a thousand "retries" in microseconds.
  bool sleep_on_backoff = true;
  /// Label applied to this client's metric series ({client="<label>"}).
  std::string metric_label = "0";
};

/// Point-in-time counters of one client.
struct ClientStats {
  uint64_t requests = 0;          ///< Execute() calls
  uint64_t attempts = 0;          ///< Submit attempts reaching the service
  uint64_t retries = 0;           ///< attempts beyond each request's first
  uint64_t ok = 0;                ///< requests that ended OK
  uint64_t failed = 0;            ///< requests that ended non-OK (any code)
  uint64_t budget_denied = 0;     ///< retries suppressed by the budget
  uint64_t breaker_rejected = 0;  ///< requests rejected while the breaker was open
  double total_backoff_ms = 0;    ///< backoff the policy scheduled

  /// attempts / requests — the measured load amplification the retry budget
  /// bounds at (1 + ratio) plus the burst allowance.
  double amplification() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(attempts) /
                               static_cast<double>(requests);
  }
};

/// Client-side resilience wrapper around QueryService::Submit: a circuit
/// breaker in front, a jittered-backoff retry loop behind it, and a
/// token-bucket retry budget so the loop cannot amplify load on a failing
/// service beyond a configured factor. This is the layer a well-behaved VQI
/// front end (or engine bridge, à la VisualNeo) talks to instead of raw
/// Submit.
///
/// Instruments (registered in the service's registry, labeled by client):
/// vqi_client_requests_total, vqi_client_retries_total,
/// vqi_client_budget_denied_total, vqi_client_breaker_rejected_total,
/// vqi_client_attempts_per_request (histogram), vqi_breaker_state (gauge:
/// 0 closed, 1 open, 2 half-open) and vqi_breaker_opened_total.
///
/// Thread-safe; the service must outlive the client.
class ServiceClient {
 public:
  explicit ServiceClient(QueryService& service,
                         ServiceClientOptions options = {});

  /// Submits `request` with breaker + retry + budget semantics and waits for
  /// the result. Non-retryable outcomes (OK, kInvalidArgument, kNotFound,
  /// kDeadlineExceeded) return immediately; kUnavailable / kInternal retry
  /// up to the policy's attempt cap while the budget allows. A request
  /// rejected by the open breaker returns kUnavailable without touching the
  /// service.
  QueryResult Execute(QueryRequest request);

  ClientStats stats() const;
  BreakerState breaker_state() const { return breaker_.state(); }
  const CircuitBreaker& breaker() const { return breaker_; }
  double budget_tokens() const { return budget_.tokens(); }

 private:
  void RecordOutcome(StatusCode code);

  QueryService& service_;
  ServiceClientOptions options_;
  CircuitBreaker breaker_;
  RetryBudget budget_;

  mutable Mutex mutex_;
  Rng rng_ VQLIB_GUARDED_BY(mutex_);
  ClientStats stats_ VQLIB_GUARDED_BY(mutex_);

  obs::Counter* requests_total_;
  obs::Counter* retries_total_;
  obs::Counter* budget_denied_total_;
  obs::Counter* breaker_rejected_total_;
  obs::Counter* breaker_opened_total_;
  obs::Histogram* attempts_per_request_;
  obs::Gauge* breaker_state_gauge_;
};

}  // namespace resilience
}  // namespace vqi

#endif  // VQLIB_SERVICE_RESILIENCE_SERVICE_CLIENT_H_
