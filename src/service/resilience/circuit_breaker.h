#ifndef VQLIB_SERVICE_RESILIENCE_CIRCUIT_BREAKER_H_
#define VQLIB_SERVICE_RESILIENCE_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace vqi {
namespace resilience {

enum class BreakerState : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// "Closed", "Open", or "HalfOpen".
const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Rolling window of most-recent outcomes the failure rate is computed
  /// over.
  size_t window_size = 32;
  /// Outcomes required in the window before the breaker may trip (a single
  /// early failure must not open a cold breaker).
  size_t min_samples = 8;
  /// Failure fraction (within the window) at or above which the breaker
  /// opens.
  double failure_threshold = 0.5;
  /// How long an open breaker rejects before letting probes through.
  double open_cooldown_ms = 100.0;
  /// Successful probes required in half-open to close; any probe failure
  /// reopens (and restarts the cooldown).
  size_t half_open_probes = 3;
};

/// Three-state circuit breaker over a rolling failure-rate window — the
/// fail-fast guard between a client and a struggling service. Closed passes
/// everything and tracks outcomes; when the windowed failure rate crosses the
/// threshold the breaker opens and rejects instantly (no queueing against a
/// dead backend); after a cooldown it admits a handful of half-open probes
/// whose outcomes decide between closing and reopening.
///
/// Thread-safe. The caller reports outcomes via RecordSuccess/RecordFailure
/// for every operation that Allow() admitted.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// True when the caller may attempt the operation now. In the open state
  /// this is where the cooldown expiry transitions to half-open; in
  /// half-open at most `half_open_probes` callers are admitted per probe
  /// round.
  bool Allow();

  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  /// The state a probe would encounter right now, without mutating anything:
  /// an open breaker whose cooldown has expired reports kHalfOpen (the next
  /// Allow() would admit a probe). Load balancers rank replicas by this so a
  /// recovering replica is eligible for probe traffic even though state()
  /// still says kOpen until someone actually calls Allow().
  BreakerState EffectiveState() const;
  /// Failure fraction over the current window (0 when empty).
  double FailureRate() const;
  /// Times the breaker transitioned closed/half-open -> open.
  uint64_t TimesOpened() const;

 private:
  void RecordLocked(bool failure) VQLIB_REQUIRES(mutex_);
  void OpenLocked() VQLIB_REQUIRES(mutex_);
  double WindowFailureRateLocked() const VQLIB_REQUIRES(mutex_);

  CircuitBreakerOptions options_;
  mutable Mutex mutex_;
  BreakerState state_ VQLIB_GUARDED_BY(mutex_) = BreakerState::kClosed;
  // Rolling outcome window (true = failure), a ring over the last
  // window_size outcomes.
  std::vector<bool> window_ VQLIB_GUARDED_BY(mutex_);
  size_t window_next_ VQLIB_GUARDED_BY(mutex_) = 0;
  size_t window_count_ VQLIB_GUARDED_BY(mutex_) = 0;
  size_t window_failures_ VQLIB_GUARDED_BY(mutex_) = 0;
  Stopwatch opened_at_ VQLIB_GUARDED_BY(mutex_);
  size_t half_open_admitted_ VQLIB_GUARDED_BY(mutex_) = 0;
  size_t half_open_successes_ VQLIB_GUARDED_BY(mutex_) = 0;
  uint64_t times_opened_ VQLIB_GUARDED_BY(mutex_) = 0;
};

}  // namespace resilience
}  // namespace vqi

#endif  // VQLIB_SERVICE_RESILIENCE_CIRCUIT_BREAKER_H_
