#include "service/resilience/circuit_breaker.h"

#include <algorithm>

namespace vqi {
namespace resilience {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "Closed";
    case BreakerState::kOpen:
      return "Open";
    case BreakerState::kHalfOpen:
      return "HalfOpen";
  }
  return "Unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {
  options_.window_size = std::max<size_t>(1, options_.window_size);
  options_.min_samples =
      std::max<size_t>(1, std::min(options_.min_samples, options_.window_size));
  options_.half_open_probes = std::max<size_t>(1, options_.half_open_probes);
  window_.assign(options_.window_size, false);
}

bool CircuitBreaker::Allow() {
  MutexLock lock(&mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (opened_at_.ElapsedMillis() < options_.open_cooldown_ms) return false;
      state_ = BreakerState::kHalfOpen;
      half_open_admitted_ = 0;
      half_open_successes_ = 0;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (half_open_admitted_ >= options_.half_open_probes) return false;
      ++half_open_admitted_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(&mutex_);
  RecordLocked(/*failure=*/false);
}

void CircuitBreaker::RecordFailure() {
  MutexLock lock(&mutex_);
  RecordLocked(/*failure=*/true);
}

void CircuitBreaker::RecordLocked(bool failure) {
  if (state_ == BreakerState::kHalfOpen) {
    if (failure) {
      OpenLocked();
      return;
    }
    if (++half_open_successes_ >= options_.half_open_probes) {
      // Recovered: close with a clean window so stale failures from before
      // the outage cannot re-trip the breaker immediately.
      state_ = BreakerState::kClosed;
      std::fill(window_.begin(), window_.end(), false);
      window_next_ = 0;
      window_count_ = 0;
      window_failures_ = 0;
    }
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // late completions; ignore
  if (window_count_ == window_.size()) {
    if (window_[window_next_]) --window_failures_;
  } else {
    ++window_count_;
  }
  window_[window_next_] = failure;
  if (failure) ++window_failures_;
  window_next_ = (window_next_ + 1) % window_.size();
  if (window_count_ >= options_.min_samples &&
      WindowFailureRateLocked() >= options_.failure_threshold) {
    OpenLocked();
  }
}

void CircuitBreaker::OpenLocked() {
  state_ = BreakerState::kOpen;
  opened_at_.Restart();
  ++times_opened_;
}

double CircuitBreaker::WindowFailureRateLocked() const {
  return window_count_ == 0 ? 0.0
                            : static_cast<double>(window_failures_) /
                                  static_cast<double>(window_count_);
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(&mutex_);
  return state_;
}

BreakerState CircuitBreaker::EffectiveState() const {
  MutexLock lock(&mutex_);
  if (state_ == BreakerState::kOpen &&
      opened_at_.ElapsedMillis() >= options_.open_cooldown_ms) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

double CircuitBreaker::FailureRate() const {
  MutexLock lock(&mutex_);
  return WindowFailureRateLocked();
}

uint64_t CircuitBreaker::TimesOpened() const {
  MutexLock lock(&mutex_);
  return times_opened_;
}

}  // namespace resilience
}  // namespace vqi
