#include "service/resilience/retry.h"

#include <algorithm>

namespace vqi {
namespace resilience {

bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kInternal;
}

double NextBackoffMs(const RetryPolicy& policy, double prev_ms, Rng& rng) {
  double base = std::max(policy.base_ms, 0.0);
  double cap = std::max(policy.cap_ms, base);
  if (prev_ms <= 0) return std::min(base, cap);
  double hi = std::min(prev_ms * 3.0, cap);
  if (hi <= base) return base;
  return base + rng.UniformDouble() * (hi - base);
}

RetryBudget::RetryBudget(double ratio, double capacity)
    : ratio_(std::max(ratio, 0.0)),
      capacity_(std::max(capacity, 1.0)),
      // Start full: a cold client may retry a small initial burst; the ratio
      // governs everything beyond it.
      tokens_(capacity_) {}

void RetryBudget::OnRequest() {
  MutexLock lock(&mutex_);
  tokens_ = std::min(tokens_ + ratio_, capacity_);
}

bool RetryBudget::TryConsumeRetry() {
  MutexLock lock(&mutex_);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double RetryBudget::tokens() const {
  MutexLock lock(&mutex_);
  return tokens_;
}

}  // namespace resilience
}  // namespace vqi
