#include "service/resilience/service_client.h"

#include <chrono>
#include <thread>
#include <utility>

namespace vqi {
namespace resilience {

ServiceClient::ServiceClient(QueryService& service,
                             ServiceClientOptions options)
    : service_(service),
      options_(std::move(options)),
      breaker_(options_.breaker),
      budget_(options_.retry_budget_ratio, options_.retry_budget_capacity),
      rng_(options_.jitter_seed) {
  obs::MetricsRegistry& registry = service_.metrics();
  obs::Labels labels{{"client", options_.metric_label}};
  requests_total_ = &registry.GetCounter(
      "vqi_client_requests_total", "Requests issued through a ServiceClient.",
      labels);
  retries_total_ = &registry.GetCounter(
      "vqi_client_retries_total", "Retry attempts the budget admitted.",
      labels);
  budget_denied_total_ = &registry.GetCounter(
      "vqi_client_budget_denied_total",
      "Retries suppressed by the token-bucket retry budget.", labels);
  breaker_rejected_total_ = &registry.GetCounter(
      "vqi_client_breaker_rejected_total",
      "Requests rejected fast while the circuit breaker was open.", labels);
  breaker_opened_total_ = &registry.GetCounter(
      "vqi_breaker_opened_total",
      "Circuit-breaker transitions into the open state.", labels);
  attempts_per_request_ = &registry.GetHistogram(
      "vqi_client_attempts_per_request",
      "Submit attempts one request needed (1 = no retries); the mean is the "
      "client's load amplification.",
      obs::Histogram::ExponentialBounds(1, 2, 6), labels);
  breaker_state_gauge_ = &registry.GetGauge(
      "vqi_breaker_state",
      "Circuit-breaker state: 0 closed, 1 open, 2 half-open.", labels);
}

void ServiceClient::RecordOutcome(StatusCode code) {
  if (!options_.enable_breaker) return;
  uint64_t opened_before = breaker_.TimesOpened();
  // Only service-health failures count against the breaker. Caller errors
  // and deadline expiries are answers, not outages.
  if (IsRetryable(code)) {
    breaker_.RecordFailure();
  } else {
    breaker_.RecordSuccess();
  }
  uint64_t newly_opened = breaker_.TimesOpened() - opened_before;
  if (newly_opened > 0) breaker_opened_total_->Increment(newly_opened);
  breaker_state_gauge_->Set(static_cast<double>(breaker_.state()));
}

QueryResult ServiceClient::Execute(QueryRequest request) {
  requests_total_->Increment();
  budget_.OnRequest();
  {
    MutexLock lock(&mutex_);
    ++stats_.requests;
  }

  uint64_t attempts = 0;
  double backoff_ms = 0;
  QueryResult result;
  for (;;) {
    if (options_.enable_breaker && !breaker_.Allow()) {
      breaker_rejected_total_->Increment();
      breaker_state_gauge_->Set(static_cast<double>(breaker_.state()));
      MutexLock lock(&mutex_);
      ++stats_.breaker_rejected;
      ++stats_.failed;
      result.status = Status::Unavailable("circuit breaker open");
      return result;
    }

    ++attempts;
    {
      MutexLock lock(&mutex_);
      ++stats_.attempts;
    }
    result = service_.Execute(request);
    RecordOutcome(result.status.code());

    if (!IsRetryable(result.status.code())) break;
    if (attempts >= options_.retry.max_attempts) break;
    if (!budget_.TryConsumeRetry()) {
      budget_denied_total_->Increment();
      MutexLock lock(&mutex_);
      ++stats_.budget_denied;
      break;
    }

    retries_total_->Increment();
    {
      MutexLock lock(&mutex_);
      ++stats_.retries;
      backoff_ms = NextBackoffMs(options_.retry, backoff_ms, rng_);
      stats_.total_backoff_ms += backoff_ms;
    }
    if (options_.sleep_on_backoff && backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }

  attempts_per_request_->Observe(static_cast<double>(attempts));
  {
    MutexLock lock(&mutex_);
    if (result.status.ok()) {
      ++stats_.ok;
    } else {
      ++stats_.failed;
    }
  }
  return result;
}

ClientStats ServiceClient::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

}  // namespace resilience
}  // namespace vqi
