#ifndef VQLIB_SERVICE_RESILIENCE_RETRY_H_
#define VQLIB_SERVICE_RESILIENCE_RETRY_H_

#include <cstddef>
#include <cstdint>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace vqi {
namespace resilience {

/// Client retry schedule: exponential backoff with decorrelated jitter
/// (Brooker's "Exponential Backoff And Jitter" variant). Each wait is drawn
/// uniformly from [base_ms, prev_wait * 3], capped at cap_ms — retries spread
/// out in time instead of synchronizing into waves.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  size_t max_attempts = 4;
  /// Lower bound (and first wait) in milliseconds.
  double base_ms = 1.0;
  /// Upper bound every wait is clamped to.
  double cap_ms = 200.0;
};

/// True for status codes a retry can plausibly fix: kUnavailable (queue full,
/// brief outage) and kInternal (transient server fault). Caller errors
/// (kInvalidArgument, kNotFound) and budget expiry (kDeadlineExceeded) are
/// never retried.
bool IsRetryable(StatusCode code);

/// Next wait given the previous one (pass 0 before the first retry).
/// Deterministic given the Rng state.
double NextBackoffMs(const RetryPolicy& policy, double prev_ms, Rng& rng);

/// Token-bucket retry budget: the guard that turns "retry on failure" from a
/// load amplifier into a bounded mitigation. Every first attempt deposits
/// `ratio` tokens (capped at `capacity`); every retry must withdraw one full
/// token or be denied. Over any long window, retries ≤ ratio * requests +
/// capacity, so total load amplification is bounded by (1 + ratio) plus a
/// constant burst allowance — even when the service fails 100% of requests.
///
/// Thread-safe; one budget is shared by all requests of a client.
class RetryBudget {
 public:
  explicit RetryBudget(double ratio = 0.1, double capacity = 10.0);

  /// Deposit for one first attempt.
  void OnRequest();

  /// Withdraws one token; false (and no state change) when the bucket has
  /// less than one token — the caller must give up instead of retrying.
  bool TryConsumeRetry();

  double tokens() const;
  double ratio() const { return ratio_; }
  double capacity() const { return capacity_; }

 private:
  const double ratio_;
  const double capacity_;
  mutable Mutex mutex_;
  double tokens_ VQLIB_GUARDED_BY(mutex_);
};

}  // namespace resilience
}  // namespace vqi

#endif  // VQLIB_SERVICE_RESILIENCE_RETRY_H_
