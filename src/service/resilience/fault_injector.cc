#include "service/resilience/fault_injector.h"

#include <chrono>
#include <thread>
#include <vector>

#include "common/strings.h"

namespace vqi {
namespace resilience {
namespace {

constexpr const char* kPointNames[kNumFaultPoints] = {
    "cache_probe", "admission", "executor", "vf2_slice", "http_read"};

Status MakeInjected(StatusCode code, FaultPoint point) {
  std::string msg = "injected fault at ";
  msg += FaultPointName(point);
  return Status(code, std::move(msg));
}

}  // namespace

const char* FaultPointName(FaultPoint point) {
  return kPointNames[static_cast<size_t>(point)];
}

bool FaultPointFromName(std::string_view name, FaultPoint* out) {
  for (size_t i = 0; i < kNumFaultPoints; ++i) {
    if (name == kPointNames[i]) {
      *out = static_cast<FaultPoint>(i);
      return true;
    }
  }
  return false;
}

bool FaultPlan::AnyActive() const {
  for (const FaultPointSpec& spec : points) {
    if (spec.Active()) return true;
  }
  return false;
}

FaultInjector::FaultInjector(FaultPlan plan) : seed_(plan.seed) {
  // Fork one independent stream per point from the plan seed so decisions at
  // one point never perturb another point's sequence.
  Rng root(plan.seed);
  for (size_t i = 0; i < kNumFaultPoints; ++i) {
    states_[i].rng = root.Fork();
    states_[i].spec = plan.points[i];
  }
}

FaultDecision FaultInjector::Decide(FaultPoint point) {
  PointState& state = states_[static_cast<size_t>(point)];
  FaultDecision decision;
  FaultPointSpec spec;
  // Metric handles are snapshotted under the lock: RegisterMetrics may install
  // them concurrently, and reading them unlocked after the critical section
  // would race that write.
  obs::Counter* latencies_metric = nullptr;
  obs::Counter* drops_metric = nullptr;
  obs::Counter* errors_metric = nullptr;
  {
    MutexLock lock(&state.mutex);
    spec = state.spec;
    if (!spec.Active()) return decision;
    latencies_metric = state.latencies_metric;
    drops_metric = state.drops_metric;
    errors_metric = state.errors_metric;
    // Always burn the same three draws per decision so toggling one
    // probability does not shift the sequence seen by the others.
    double latency_roll = state.rng.UniformDouble();
    double drop_roll = state.rng.UniformDouble();
    double error_roll = state.rng.UniformDouble();
    if (spec.latency_p > 0 && latency_roll < spec.latency_p) {
      decision.latency_ms = spec.latency_ms;
    }
    if (spec.drop_p > 0 && drop_roll < spec.drop_p) {
      decision.dropped = true;
      decision.status = MakeInjected(StatusCode::kUnavailable, point);
    } else if (spec.error_p > 0 && error_roll < spec.error_p) {
      decision.status = MakeInjected(spec.error_code, point);
    }
  }
  if (decision.latency_ms > 0) {
    state.latencies.fetch_add(1, std::memory_order_relaxed);
    if (latencies_metric != nullptr) latencies_metric->Increment();
  }
  if (decision.dropped) {
    state.drops.fetch_add(1, std::memory_order_relaxed);
    if (drops_metric != nullptr) drops_metric->Increment();
  } else if (!decision.status.ok()) {
    state.errors.fetch_add(1, std::memory_order_relaxed);
    if (errors_metric != nullptr) errors_metric->Increment();
  }
  return decision;
}

Status FaultInjector::Act(FaultPoint point) {
  FaultDecision decision = Decide(point);
  if (decision.latency_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(decision.latency_ms));
  }
  return decision.status;
}

void FaultInjector::SetSpec(FaultPoint point, FaultPointSpec spec) {
  PointState& state = states_[static_cast<size_t>(point)];
  MutexLock lock(&state.mutex);
  state.spec = spec;
}

FaultPointSpec FaultInjector::GetSpec(FaultPoint point) const {
  const PointState& state = states_[static_cast<size_t>(point)];
  MutexLock lock(&state.mutex);
  return state.spec;
}

uint64_t FaultInjector::InjectedErrors(FaultPoint point) const {
  return states_[static_cast<size_t>(point)].errors.load(
      std::memory_order_relaxed);
}

uint64_t FaultInjector::InjectedLatencies(FaultPoint point) const {
  return states_[static_cast<size_t>(point)].latencies.load(
      std::memory_order_relaxed);
}

uint64_t FaultInjector::InjectedDrops(FaultPoint point) const {
  return states_[static_cast<size_t>(point)].drops.load(
      std::memory_order_relaxed);
}

uint64_t FaultInjector::InjectedTotal() const {
  uint64_t total = 0;
  for (const PointState& state : states_) {
    total += state.errors.load(std::memory_order_relaxed);
    total += state.latencies.load(std::memory_order_relaxed);
    total += state.drops.load(std::memory_order_relaxed);
  }
  return total;
}

void FaultInjector::RegisterMetrics(obs::MetricsRegistry& registry) {
  {
    // A repeat call for the same registry would double-carry the accumulated
    // counts below; shards sharing one injector register through here, so
    // only the first call per registry does the work.
    MutexLock lock(&register_mutex_);
    if (registered_registry_ == &registry) return;
    registered_registry_ = &registry;
  }
  for (size_t i = 0; i < kNumFaultPoints; ++i) {
    PointState& state = states_[i];
    const std::string point = kPointNames[i];
    obs::Counter& errors = registry.GetCounter(
        "vqi_faults_injected_total", "Faults injected by the chaos layer.",
        {{"point", point}, {"kind", "error"}});
    obs::Counter& latencies = registry.GetCounter(
        "vqi_faults_injected_total", "Faults injected by the chaos layer.",
        {{"point", point}, {"kind", "latency"}});
    obs::Counter& drops = registry.GetCounter(
        "vqi_faults_injected_total", "Faults injected by the chaos layer.",
        {{"point", point}, {"kind", "drop"}});
    MutexLock lock(&state.mutex);
    uint64_t e = state.errors.load(std::memory_order_relaxed);
    uint64_t l = state.latencies.load(std::memory_order_relaxed);
    uint64_t d = state.drops.load(std::memory_order_relaxed);
    if (e > 0) errors.Increment(e);
    if (l > 0) latencies.Increment(l);
    if (d > 0) drops.Increment(d);
    state.errors_metric = &errors;
    state.latencies_metric = &latencies;
    state.drops_metric = &drops;
  }
}

StatusOr<FaultPlan> FaultInjector::ParseChaosSpec(const std::string& spec) {
  FaultPlan plan;
  auto parse_prob = [](std::string_view text, double* out) {
    double value = 0;
    if (!ParseDouble(text, &value) || value < 0 || value > 1) return false;
    *out = value;
    return true;
  };
  for (std::string_view clause_view : Split(spec, ';')) {
    std::string clause(StripWhitespace(clause_view));
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      int64_t seed = 0;
      if (!ParseInt64(clause.substr(5), &seed) || seed < 0) {
        return Status::InvalidArgument("chaos spec: bad seed in '" + clause +
                                       "'");
      }
      plan.seed = static_cast<uint64_t>(seed);
      continue;
    }
    size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "chaos spec: expected 'point:key=value,...' in '" + clause + "'");
    }
    FaultPoint point;
    std::string point_name(StripWhitespace(clause.substr(0, colon)));
    if (!FaultPointFromName(point_name, &point)) {
      std::string valid;
      for (size_t p = 0; p < kNumFaultPoints; ++p) {
        if (!valid.empty()) valid += ", ";
        valid += FaultPointName(static_cast<FaultPoint>(p));
      }
      return Status::InvalidArgument("chaos spec: unknown fault point '" +
                                     point_name + "' (valid points: " + valid +
                                     ")");
    }
    FaultPointSpec& ps = plan.At(point);
    for (std::string_view setting_view :
         Split(clause.substr(colon + 1), ',')) {
      std::string setting(StripWhitespace(setting_view));
      if (setting.empty()) continue;
      size_t eq = setting.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("chaos spec: expected key=value in '" +
                                       setting + "'");
      }
      std::string key = setting.substr(0, eq);
      std::string value = setting.substr(eq + 1);
      bool ok = true;
      if (key == "error") {
        ok = parse_prob(value, &ps.error_p);
      } else if (key == "code") {
        if (value == "unavailable") {
          ps.error_code = StatusCode::kUnavailable;
        } else if (value == "internal") {
          ps.error_code = StatusCode::kInternal;
        } else {
          ok = false;
        }
      } else if (key == "latency_ms") {
        ok = ParseDouble(value, &ps.latency_ms) && ps.latency_ms >= 0;
        // "latency_ms=5" alone means "always 5ms": an unset probability
        // defaults to certain, the intuitive reading of the spec.
        if (ok && ps.latency_p == 0) ps.latency_p = 1.0;
      } else if (key == "latency_p") {
        ok = parse_prob(value, &ps.latency_p);
      } else if (key == "drop") {
        ok = parse_prob(value, &ps.drop_p);
      } else {
        return Status::InvalidArgument("chaos spec: unknown key '" + key +
                                       "'");
      }
      if (!ok) {
        return Status::InvalidArgument("chaos spec: bad value in '" + setting +
                                       "'");
      }
    }
  }
  return plan;
}

}  // namespace resilience
}  // namespace vqi
