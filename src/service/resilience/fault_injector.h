#ifndef VQLIB_SERVICE_RESILIENCE_FAULT_INJECTOR_H_
#define VQLIB_SERVICE_RESILIENCE_FAULT_INJECTOR_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace vqi {
namespace resilience {

/// Named places in the query-service hot path where faults can be injected.
/// Each is a real production failure mode:
///   kCacheProbe  — the result cache is slow or unreachable (degrades to a
///                  miss, never fails the request).
///   kAdmission   — admission itself errors or stalls (overloaded front door).
///   kExecutor    — a worker fails the whole request or silently drops it
///                  (crashed shard, lost task).
///   kVf2Slice    — one matching slice is slow or errors (slow/failing shard
///                  mid-query; interacts with deadlines and partial results).
///   kHttpRead    — reading one HTTP request off the wire is slow (slowloris:
///                  a client trickling bytes holds a connection slot), torn
///                  (drop: the peer disappears mid-request), or errors (the
///                  socket fails; the server answers 503 and closes).
enum class FaultPoint : uint8_t {
  kCacheProbe = 0,
  kAdmission = 1,
  kExecutor = 2,
  kVf2Slice = 3,
  kHttpRead = 4,
};

inline constexpr size_t kNumFaultPoints = 5;

/// Stable spec/metric name for `point` ("cache_probe", "admission",
/// "executor", "vf2_slice", "http_read").
const char* FaultPointName(FaultPoint point);

/// Inverse of FaultPointName; false when `name` is not a fault point.
bool FaultPointFromName(std::string_view name, FaultPoint* out);

/// Per-point fault probabilities. All default to "never fires".
struct FaultPointSpec {
  /// Probability of failing the operation with `error_code`.
  double error_p = 0;
  /// Status injected by an error fault; kUnavailable or kInternal.
  StatusCode error_code = StatusCode::kUnavailable;
  /// Probability of stalling the operation by `latency_ms`.
  double latency_p = 0;
  double latency_ms = 0;
  /// Probability of dropping the work outright. At kExecutor this models a
  /// lost task (the service still resolves the future — see
  /// docs/resilience.md); elsewhere it behaves like an kUnavailable error.
  double drop_p = 0;

  bool Active() const { return error_p > 0 || latency_p > 0 || drop_p > 0; }
};

/// A full chaos configuration: one spec per fault point plus the seed that
/// makes every run reproducible.
struct FaultPlan {
  uint64_t seed = 42;
  std::array<FaultPointSpec, kNumFaultPoints> points;

  FaultPointSpec& At(FaultPoint p) { return points[static_cast<size_t>(p)]; }
  const FaultPointSpec& At(FaultPoint p) const {
    return points[static_cast<size_t>(p)];
  }
  bool AnyActive() const;
};

/// What a fault point decided for one operation, in application order:
/// sleep `latency_ms` first (if > 0), then fail with `status` (if non-OK).
/// `dropped` distinguishes a drop from a plain error so the executor can
/// model a lost task instead of an error reply.
struct FaultDecision {
  double latency_ms = 0;
  Status status;  // OK = let the operation proceed
  bool dropped = false;

  bool ok() const { return status.ok() && latency_ms == 0; }
};

/// Deterministic, seeded fault injector shared by every fault point of one
/// service. Each point draws from its own forked Rng stream, so the decision
/// sequence *per point* depends only on (seed, number of prior decisions at
/// that point) — concurrency at one point interleaves assignment of that
/// stream's decisions but cannot change which decisions are drawn, and
/// single-threaded chaos runs replay exactly.
///
/// Thread-safe. Specs can be swapped at runtime (SetSpec) so chaos scenarios
/// can script "fail hard, then recover" without rebuilding the service.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Rolls the dice for one operation at `point`. Checks, in order:
  /// latency, drop, error — so one decision can both stall and fail, like a
  /// timeout against a dead backend.
  FaultDecision Decide(FaultPoint point);

  /// Decide(), then actually sleep any injected latency. Returns the
  /// injected status (drop maps to kUnavailable) — the convenience form for
  /// call sites that treat drops as errors.
  Status Act(FaultPoint point);

  /// Replaces the spec of `point` (e.g. clear faults to test recovery).
  void SetSpec(FaultPoint point, FaultPointSpec spec);
  FaultPointSpec GetSpec(FaultPoint point) const;

  /// Decisions that injected something at `point`, by kind.
  uint64_t InjectedErrors(FaultPoint point) const;
  uint64_t InjectedLatencies(FaultPoint point) const;
  uint64_t InjectedDrops(FaultPoint point) const;
  /// Total injections across all points and kinds.
  uint64_t InjectedTotal() const;

  /// Registers vqi_faults_injected_total{point=...,kind=...} counters and
  /// mirrors every future injection into them. Idempotent per registry: a
  /// repeat call for the currently registered registry is a no-op, so N
  /// service shards sharing one injector and one registry may each call it —
  /// accumulated counts are carried over exactly once. The registry must
  /// outlive the injector.
  void RegisterMetrics(obs::MetricsRegistry& registry);

  uint64_t seed() const { return seed_; }

  /// Parses the chaos-spec grammar (see docs/resilience.md):
  ///
  ///   spec    := clause (';' clause)*
  ///   clause  := 'seed' '=' uint
  ///            | point ':' setting (',' setting)*
  ///   point   := 'cache_probe' | 'admission' | 'executor' | 'vf2_slice'
  ///            | 'http_read'
  ///   setting := 'error' '=' prob | 'code' '=' ('unavailable' | 'internal')
  ///            | 'latency_ms' '=' num | 'latency_p' '=' prob
  ///            | 'drop' '=' prob
  ///
  /// e.g. "seed=7;executor:error=0.2,code=internal;vf2_slice:latency_ms=5,latency_p=0.5"
  ///
  /// Malformed specs come back as kInvalidArgument; an unknown point name is
  /// rejected with a message enumerating the valid points, so a typoed
  /// `--chaos` flag fails loudly instead of silently arming nothing.
  static StatusOr<FaultPlan> ParseChaosSpec(const std::string& spec);

 private:
  struct PointState {
    mutable Mutex mutex;
    Rng rng VQLIB_GUARDED_BY(mutex){0};
    FaultPointSpec spec VQLIB_GUARDED_BY(mutex);
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> latencies{0};
    std::atomic<uint64_t> drops{0};
    // Mirrors into an obs registry; RegisterMetrics may race with Decide, so
    // the handles are guarded like the spec (Decide snapshots them under the
    // lock before incrementing — see fault_injector.cc).
    obs::Counter* errors_metric VQLIB_GUARDED_BY(mutex) = nullptr;
    obs::Counter* latencies_metric VQLIB_GUARDED_BY(mutex) = nullptr;
    obs::Counter* drops_metric VQLIB_GUARDED_BY(mutex) = nullptr;
  };

  uint64_t seed_;
  std::array<PointState, kNumFaultPoints> states_;
  // RegisterMetrics idempotence (see its contract).
  mutable Mutex register_mutex_;
  obs::MetricsRegistry* registered_registry_ VQLIB_GUARDED_BY(register_mutex_) =
      nullptr;
};

}  // namespace resilience
}  // namespace vqi

#endif  // VQLIB_SERVICE_RESILIENCE_FAULT_INJECTOR_H_
