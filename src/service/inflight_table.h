#ifndef VQLIB_SERVICE_INFLIGHT_TABLE_H_
#define VQLIB_SERVICE_INFLIGHT_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/query_types.h"

namespace vqi {

/// One coalesced duplicate parked on an in-flight leader: everything the
/// service needs to resolve the request at fan-out time — or to re-execute it
/// independently when the leader's result cannot be shared (leader error,
/// partial result a strict waiter rejects, mid-flight invalidation).
struct InflightWaiter {
  QueryRequest request;
  std::shared_ptr<std::promise<QueryResult>> promise;
  /// The waiter's own admission clock; drives QueryResult::latency_ms.
  Stopwatch admitted;
  /// Attach-to-fanout wait (the vqi_coalesce_waiter_wait_ms histogram).
  Stopwatch attached;
  obs::RequestTrace trace;
};

/// Single-flight table over canonical cache keys: the first request for a key
/// becomes the *leader* and executes; concurrent duplicates *attach* as
/// waiters and are resolved from the leader's one backend execution. This is
/// true request coalescing — the dequeue-time cache re-probe ("coalescing-
/// lite") only collapses duplicates that arrive after the leader finished,
/// while this table collapses duplicates that arrive while the leader is
/// still queued or running.
///
/// The table only tracks membership; fan-out policy (who may share a partial
/// result, when a waiter re-executes) lives in QueryService. Thread-safe.
class InflightTable {
 public:
  enum class Role { kLeader, kWaiter };

  InflightTable() = default;
  InflightTable(const InflightTable&) = delete;
  InflightTable& operator=(const InflightTable&) = delete;

  /// If no entry exists for `key`, registers one — the caller is the leader,
  /// `*waiter` is left untouched, and the caller must eventually call
  /// Complete(key) exactly once. Otherwise moves `*waiter` into the existing
  /// entry and returns kWaiter — the waiter's promise will be resolved by the
  /// leader's fan-out.
  Role JoinOrLead(const std::string& key, InflightWaiter* waiter);

  /// Removes the entry for `key` and returns its attached waiters (possibly
  /// empty). Called by the leader once its result is ready, or to abort a
  /// lead whose dispatch failed.
  std::vector<InflightWaiter> Complete(const std::string& key);

  /// Waiters currently attached across all in-flight keys. Counted as queue
  /// occupancy by priority load shedding: an unbounded flood of "free"
  /// duplicates still represents pending fan-out work and memory.
  size_t TotalWaiters() const {
    return total_waiters_.load(std::memory_order_relaxed);
  }

  /// Keys currently led by an executing request.
  size_t InflightKeys() const;

  /// Registers the coalescing instrument set (vqi_coalesce_{leaders,waiters,
  /// fanout,detach,reexec,reexec_denied}_total and the waiter-wait
  /// histogram). Must be called before the table is used concurrently (the
  /// handles are unsynchronized init-time state); the registry must outlive
  /// the table. Without registration the table still works; events are
  /// simply unmetered. `labels` is applied to every series so N tables can
  /// share one registry (e.g. {shard="<i>"} under a sharded router).
  void RegisterMetrics(obs::MetricsRegistry& registry,
                       const obs::Labels& labels = {});

  // Metric hooks for the fan-out owner (the table cannot see fan-out policy).
  void RecordFanout(uint64_t count);
  void RecordDetach();
  void RecordReexec();
  void RecordReexecDenied();
  void ObserveWaiterWait(double ms);

  // Counter reads for ServiceStats snapshots (0 before RegisterMetrics).
  uint64_t leaders() const {
    return leaders_total_ != nullptr ? leaders_total_->Value() : 0;
  }
  uint64_t waiters() const {
    return waiters_total_ != nullptr ? waiters_total_->Value() : 0;
  }
  uint64_t fanout() const {
    return fanout_total_ != nullptr ? fanout_total_->Value() : 0;
  }
  uint64_t detached() const {
    return detach_total_ != nullptr ? detach_total_->Value() : 0;
  }

 private:
  mutable Mutex mutex_;
  std::unordered_map<std::string, std::vector<InflightWaiter>> entries_
      VQLIB_GUARDED_BY(mutex_);
  std::atomic<size_t> total_waiters_{0};

  // Instrument handles: written once by RegisterMetrics (which must happen
  // before concurrent use, per the class contract), read-only afterwards —
  // the same init-then-immutable pattern as ThreadPool's handles.
  obs::Counter* leaders_total_ = nullptr;
  obs::Counter* waiters_total_ = nullptr;
  obs::Counter* fanout_total_ = nullptr;
  obs::Counter* detach_total_ = nullptr;
  obs::Counter* reexec_total_ = nullptr;
  obs::Counter* reexec_denied_total_ = nullptr;
  obs::Histogram* waiter_wait_ms_ = nullptr;
};

}  // namespace vqi

#endif  // VQLIB_SERVICE_INFLIGHT_TABLE_H_
