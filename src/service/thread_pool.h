#ifndef VQLIB_SERVICE_THREAD_POOL_H_
#define VQLIB_SERVICE_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace vqi {

/// Sizing knobs for a ThreadPool.
struct ThreadPoolOptions {
  /// Number of worker threads; clamped to at least 1.
  size_t num_threads = 4;
  /// Maximum number of admitted-but-not-yet-running tasks; clamped to at
  /// least 1. Admission beyond this returns kUnavailable.
  size_t queue_capacity = 256;
  /// When set, the pool registers its instruments here (vqi_pool_queue_depth
  /// gauge, vqi_pool_queue_wait_ms histogram, vqi_pool_tasks_executed_total
  /// counter, vqi_pool_threads gauge). Must outlive the pool.
  obs::MetricsRegistry* metrics = nullptr;
  /// Labels applied to every pool instrument, so two pools sharing one
  /// registry (e.g. the query service's worker pool and the HTTP server's
  /// connection pool, labeled {pool="http"}) keep distinct series instead of
  /// writing through one gauge. Empty = the unlabeled series (the default,
  /// preserving pre-existing dashboards).
  obs::Labels metric_labels;
};

/// Fixed-size worker pool over a bounded MPMC task queue.
///
/// `Submit` never blocks: when the queue is at capacity it returns
/// `kUnavailable` so callers shed load (backpressure) instead of stalling the
/// submitting thread — the admission-control idiom of serving systems.
/// Shutdown is graceful: tasks already admitted run to completion, further
/// submissions are rejected, and the destructor joins every worker.
///
/// With ThreadPoolOptions::metrics set, the pool reports queue depth at every
/// enqueue/dequeue and the queue-wait time (admission to dequeue) of each
/// task — the two signals that separate "the matcher is slow" from "the pool
/// is saturated".
class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution. Returns OK when admitted, kUnavailable
  /// when the queue is full or the pool is shutting down. `task` must be
  /// non-null.
  Status Submit(std::function<void()> task);

  /// Stops admission, drains the queue (running every admitted task), and
  /// joins all workers. Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return options_.queue_capacity; }

  /// Tasks currently waiting in the queue (approximate under concurrency).
  size_t QueueDepth() const;

  /// Total tasks that have finished executing.
  uint64_t TasksExecuted() const;

 private:
  struct QueuedTask {
    std::function<void()> fn;
    Stopwatch enqueued;  ///< started at admission; read at dequeue
  };

  void WorkerLoop();

  ThreadPoolOptions options_;
  mutable Mutex mutex_;
  CondVar task_available_;
  std::deque<QueuedTask> queue_ VQLIB_GUARDED_BY(mutex_);
  // Filled in the constructor before any concurrency, then only read (and
  // joined under Shutdown); not guarded.
  std::vector<std::thread> workers_;
  uint64_t executed_ VQLIB_GUARDED_BY(mutex_) = 0;
  bool stopping_ VQLIB_GUARDED_BY(mutex_) = false;

  // Instrument handles resolved once at construction (null when the pool has
  // no registry). queue_depth_ is only written under mutex_.
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* queue_wait_ms_ = nullptr;
  obs::Counter* tasks_executed_total_ = nullptr;
};

}  // namespace vqi

#endif  // VQLIB_SERVICE_THREAD_POOL_H_
