#ifndef VQLIB_SERVICE_THREAD_POOL_H_
#define VQLIB_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace vqi {

/// Sizing knobs for a ThreadPool.
struct ThreadPoolOptions {
  /// Number of worker threads; clamped to at least 1.
  size_t num_threads = 4;
  /// Maximum number of admitted-but-not-yet-running tasks; clamped to at
  /// least 1. Admission beyond this returns kUnavailable.
  size_t queue_capacity = 256;
};

/// Fixed-size worker pool over a bounded MPMC task queue.
///
/// `Submit` never blocks: when the queue is at capacity it returns
/// `kUnavailable` so callers shed load (backpressure) instead of stalling the
/// submitting thread — the admission-control idiom of serving systems.
/// Shutdown is graceful: tasks already admitted run to completion, further
/// submissions are rejected, and the destructor joins every worker.
class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution. Returns OK when admitted, kUnavailable
  /// when the queue is full or the pool is shutting down. `task` must be
  /// non-null.
  Status Submit(std::function<void()> task);

  /// Stops admission, drains the queue (running every admitted task), and
  /// joins all workers. Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return options_.queue_capacity; }

  /// Tasks currently waiting in the queue (approximate under concurrency).
  size_t QueueDepth() const;

  /// Total tasks that have finished executing.
  uint64_t TasksExecuted() const;

 private:
  void WorkerLoop();

  ThreadPoolOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  uint64_t executed_ = 0;
  bool stopping_ = false;
};

}  // namespace vqi

#endif  // VQLIB_SERVICE_THREAD_POOL_H_
