#ifndef VQLIB_SERVICE_QUERY_TYPES_H_
#define VQLIB_SERVICE_QUERY_TYPES_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "vqi/suggestion.h"

namespace vqi {

/// Request target meaning "match against every graph in the database".
inline constexpr GraphId kAllGraphs = -1;

/// The two interactive workloads a VQI front end issues while the user draws:
/// evaluate the current visual query (subgraph matching), or rank plausible
/// next edges for the vertex being extended (auto-suggestion).
enum class QueryKind { kMatchCount, kSuggest };

/// Admission priority under overload. When the queue crosses the service's
/// high-water mark, kBackground work is shed first, then kNormal; a user
/// actively drawing (kInteractive) is only rejected by a completely full
/// queue.
enum class RequestPriority : uint8_t {
  kInteractive = 0,
  kNormal = 1,
  kBackground = 2,
};

/// "interactive", "normal", or "background".
const char* RequestPriorityName(RequestPriority priority);

/// One request against the service.
struct QueryRequest {
  QueryKind kind = QueryKind::kMatchCount;
  /// The (partial) visual query graph. Must be non-empty.
  Graph pattern;
  /// Graph to match against, or kAllGraphs for the whole collection. Ignored
  /// when `targets` is non-empty.
  GraphId target = kAllGraphs;
  /// Collection-scoped kMatchCount: when non-empty, match against exactly
  /// these graphs (each id must exist; duplicates are matched once). Cached
  /// results of such a request are keyed by the epoch of every member, so
  /// InvalidateCacheKey(g) evicts only entries whose target set contains g.
  std::vector<GraphId> targets;
  /// Wall-clock budget measured from admission; 0 disables the deadline.
  double deadline_ms = 0;
  /// Embedding cap per target graph for kMatchCount (0 = unlimited).
  uint64_t max_embeddings = 1000;
  /// For kSuggest: the vertex of `pattern` the user is extending.
  VertexId focus = 0;
  /// For kSuggest: how many ranked continuations to return.
  size_t top_k = 5;
  /// Load-shedding class under overload (see RequestPriority).
  RequestPriority priority = RequestPriority::kNormal;
  /// Graceful degradation: when true, a kMatchCount request whose deadline
  /// expires returns everything found so far as an OK result with
  /// `truncated` set, instead of a bare kDeadlineExceeded. Partial results
  /// are always a subset of the fault-free answer (every counted embedding
  /// and matched graph is real); they are never cached. A coalesced waiter
  /// with allow_partial also accepts a partial result fanned out by its
  /// leader (see docs/service.md).
  bool allow_partial = false;
  /// Cooperative cancellation. When set and flipped to true, the matcher
  /// abandons the request at the next VF2 slice boundary ("max_steps
  /// poisoning": the remaining step budget is treated as exhausted) and the
  /// request completes with kCancelled. Used by the sharded router to cancel
  /// the loser of a hedged pair (see docs/sharding.md); nullptr means the
  /// request is not cancellable.
  std::shared_ptr<std::atomic<bool>> cancel;
  /// True for a router-issued hedge of an in-flight request. A hedge bypasses
  /// request coalescing — joining the in-flight table would park it behind
  /// the very primary it is meant to race — but still probes the cache.
  bool hedge = false;
};

/// Outcome of one request. `status` is OK, kDeadlineExceeded (budget ran out
/// before the answer was complete), kNotFound (unknown target id), or
/// kInvalidArgument.
struct QueryResult {
  Status status;
  /// kMatchCount: total embeddings found (capped per graph).
  uint64_t embedding_count = 0;
  /// kMatchCount: ids of target graphs with at least one embedding.
  std::vector<GraphId> matched_graphs;
  /// kSuggest: ranked next-edge continuations for the focus vertex.
  std::vector<EdgeSuggestion> suggestions;
  /// True when served from the result cache without touching the matcher.
  bool from_cache = false;
  /// True when this response was fanned out from (or resolved by) a
  /// coalesced in-flight leader instead of its own backend execution.
  bool coalesced = false;
  /// True when the answer is incomplete (deadline expired mid-search). With
  /// QueryRequest::allow_partial the status is still OK; otherwise the
  /// partial counts accompany a kDeadlineExceeded status.
  bool truncated = false;
  /// Admission-to-completion latency.
  double latency_ms = 0;
  /// Matcher work performed for THIS response: VF2 recursion steps and
  /// cooperative deadline slices. Zero for cache hits, coalesced waiter
  /// responses, and suggestions.
  uint64_t match_steps = 0;
  uint32_t match_slices = 0;
};

}  // namespace vqi

#endif  // VQLIB_SERVICE_QUERY_TYPES_H_
