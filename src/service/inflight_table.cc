#include "service/inflight_table.h"

#include <utility>

namespace vqi {

InflightTable::Role InflightTable::JoinOrLead(const std::string& key,
                                              InflightWaiter* waiter) {
  {
    MutexLock lock(&mutex_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (!inserted) {
      it->second.push_back(std::move(*waiter));
      total_waiters_.fetch_add(1, std::memory_order_relaxed);
      if (waiters_total_ != nullptr) waiters_total_->Increment();
      return Role::kWaiter;
    }
  }
  if (leaders_total_ != nullptr) leaders_total_->Increment();
  return Role::kLeader;
}

std::vector<InflightWaiter> InflightTable::Complete(const std::string& key) {
  std::vector<InflightWaiter> waiters;
  {
    MutexLock lock(&mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return waiters;
    waiters = std::move(it->second);
    entries_.erase(it);
  }
  if (!waiters.empty()) {
    total_waiters_.fetch_sub(waiters.size(), std::memory_order_relaxed);
  }
  return waiters;
}

size_t InflightTable::InflightKeys() const {
  MutexLock lock(&mutex_);
  return entries_.size();
}

void InflightTable::RegisterMetrics(obs::MetricsRegistry& registry,
                                    const obs::Labels& labels) {
  leaders_total_ = &registry.GetCounter(
      "vqi_coalesce_leaders_total",
      "Requests that became the single-flight leader for their cache key.",
      labels);
  waiters_total_ = &registry.GetCounter(
      "vqi_coalesce_waiters_total",
      "Requests attached as waiters to an in-flight leader.", labels);
  fanout_total_ = &registry.GetCounter(
      "vqi_coalesce_fanout_total",
      "Waiter responses resolved directly from a leader's result.", labels);
  detach_total_ = &registry.GetCounter(
      "vqi_coalesce_detach_total",
      "Waiters detached at fan-out because their key was invalidated "
      "mid-flight (epoch change); each re-executes against fresh data.",
      labels);
  reexec_total_ = &registry.GetCounter(
      "vqi_coalesce_reexec_total",
      "Independent waiter re-executions after a leader error, a rejected "
      "partial, or a mid-flight invalidation.",
      labels);
  reexec_denied_total_ = &registry.GetCounter(
      "vqi_coalesce_reexec_denied_total",
      "Waiter re-executions suppressed by the coalesce retry budget; the "
      "leader's outcome was propagated instead.",
      labels);
  waiter_wait_ms_ = &registry.GetHistogram(
      "vqi_coalesce_waiter_wait_ms",
      "Time a coalesced waiter spent attached before its leader fanned out.",
      obs::Histogram::DefaultLatencyBoundsMs(), labels);
}

void InflightTable::RecordFanout(uint64_t count) {
  if (fanout_total_ != nullptr) fanout_total_->Increment(count);
}

void InflightTable::RecordDetach() {
  if (detach_total_ != nullptr) detach_total_->Increment();
}

void InflightTable::RecordReexec() {
  if (reexec_total_ != nullptr) reexec_total_->Increment();
}

void InflightTable::RecordReexecDenied() {
  if (reexec_denied_total_ != nullptr) reexec_denied_total_->Increment();
}

void InflightTable::ObserveWaiterWait(double ms) {
  if (waiter_wait_ms_ != nullptr) waiter_wait_ms_->Observe(ms);
}

}  // namespace vqi
