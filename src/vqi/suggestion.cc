#include "vqi/suggestion.h"

#include <algorithm>

#include "common/logging.h"
#include "match/vf2.h"

namespace vqi {

namespace {

void IndexGraph(const Graph& g,
                std::map<std::tuple<Label, Label, Label>, size_t>& counts) {
  for (const Edge& e : g.Edges()) {
    Label lu = g.VertexLabel(e.u);
    Label lv = g.VertexLabel(e.v);
    ++counts[{lu, e.label, lv}];
    if (lu != lv) ++counts[{lv, e.label, lu}];
  }
}

}  // namespace

SuggestionIndex SuggestionIndex::Build(const GraphDatabase& db) {
  SuggestionIndex index;
  for (const Graph& g : db.graphs()) IndexGraph(g, index.counts_);
  return index;
}

SuggestionIndex SuggestionIndex::BuildFromNetwork(const Graph& network) {
  SuggestionIndex index;
  IndexGraph(network, index.counts_);
  return index;
}

std::vector<EdgeSuggestion> SuggestionIndex::SuggestFrom(Label from,
                                                         size_t k) const {
  std::vector<EdgeSuggestion> suggestions;
  for (const auto& [key, count] : counts_) {
    if (std::get<0>(key) != from) continue;
    EdgeSuggestion s;
    s.from_label = from;
    s.edge_label = std::get<1>(key);
    s.to_label = std::get<2>(key);
    s.support = count;
    suggestions.push_back(s);
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const EdgeSuggestion& a, const EdgeSuggestion& b) {
              if (a.support != b.support) return a.support > b.support;
              return std::tie(a.edge_label, a.to_label) <
                     std::tie(b.edge_label, b.to_label);
            });
  if (suggestions.size() > k) suggestions.resize(k);
  return suggestions;
}

std::vector<EdgeSuggestion> SuggestionIndex::SuggestNextEdges(
    const Graph& query, VertexId focus, size_t k) const {
  VQI_CHECK_LT(focus, query.NumVertices());
  return SuggestFrom(query.VertexLabel(focus), k);
}

std::vector<size_t> PatternsContainingQuery(const Graph& query,
                                            const std::vector<Graph>& patterns,
                                            size_t k) {
  std::vector<size_t> hits;
  // Smallest pattern first: the tightest superstructures are the most
  // actionable suggestions.
  std::vector<size_t> order(patterns.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return patterns[a].NumEdges() < patterns[b].NumEdges();
  });
  for (size_t i : order) {
    if (hits.size() >= k) break;
    if (ContainsSubgraph(patterns[i], query)) hits.push_back(i);
  }
  return hits;
}

}  // namespace vqi
