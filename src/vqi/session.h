#ifndef VQLIB_VQI_SESSION_H_
#define VQLIB_VQI_SESSION_H_

#include <vector>

#include "vqi/panels.h"

namespace vqi {

/// An editing session over a QueryPanel with undo/redo — the "robustness"
/// and "errors" usability criteria of §2.1 (users must recover from
/// mistakes easily). Mutations go through the session; each successful
/// mutation pushes an undo snapshot. Failed mutations leave history
/// untouched.
class QuerySession {
 public:
  /// `panel` must outlive the session.
  explicit QuerySession(QueryPanel* panel, size_t max_history = 64);

  // Forwarded mutations (same contracts as QueryPanel).
  size_t AddVertex(Label label);
  bool AddEdge(size_t a, size_t b, Label label = 0);
  bool SetVertexLabel(size_t v, Label label);
  bool SetEdgeLabel(size_t a, size_t b, Label label);
  std::vector<size_t> AddPattern(const Graph& pattern);
  bool MergeVertices(size_t a, size_t b);
  bool DeleteVertex(size_t v);
  bool DeleteEdge(size_t a, size_t b);

  /// Reverts the last successful mutation; false when nothing to undo.
  bool Undo();

  /// Re-applies the last undone mutation; false when nothing to redo.
  bool Redo();

  size_t undo_depth() const { return undo_stack_.size(); }
  size_t redo_depth() const { return redo_stack_.size(); }

 private:
  void PushUndo();

  QueryPanel* panel_;
  size_t max_history_;
  std::vector<QueryPanel> undo_stack_;
  std::vector<QueryPanel> redo_stack_;
};

}  // namespace vqi

#endif  // VQLIB_VQI_SESSION_H_
