#include "vqi/session.h"

#include "common/logging.h"

namespace vqi {

QuerySession::QuerySession(QueryPanel* panel, size_t max_history)
    : panel_(panel), max_history_(max_history) {
  VQI_CHECK(panel != nullptr);
  VQI_CHECK_GE(max_history, 1u);
}

void QuerySession::PushUndo() {
  undo_stack_.push_back(*panel_);
  if (undo_stack_.size() > max_history_) {
    undo_stack_.erase(undo_stack_.begin());
  }
  redo_stack_.clear();  // a new edit invalidates the redo branch
}

size_t QuerySession::AddVertex(Label label) {
  PushUndo();
  return panel_->AddVertex(label);
}

bool QuerySession::AddEdge(size_t a, size_t b, Label label) {
  QueryPanel snapshot = *panel_;
  if (!panel_->AddEdge(a, b, label)) return false;
  undo_stack_.push_back(std::move(snapshot));
  if (undo_stack_.size() > max_history_) undo_stack_.erase(undo_stack_.begin());
  redo_stack_.clear();
  return true;
}

bool QuerySession::SetVertexLabel(size_t v, Label label) {
  QueryPanel snapshot = *panel_;
  if (!panel_->SetVertexLabel(v, label)) return false;
  undo_stack_.push_back(std::move(snapshot));
  if (undo_stack_.size() > max_history_) undo_stack_.erase(undo_stack_.begin());
  redo_stack_.clear();
  return true;
}

bool QuerySession::SetEdgeLabel(size_t a, size_t b, Label label) {
  QueryPanel snapshot = *panel_;
  if (!panel_->SetEdgeLabel(a, b, label)) return false;
  undo_stack_.push_back(std::move(snapshot));
  if (undo_stack_.size() > max_history_) undo_stack_.erase(undo_stack_.begin());
  redo_stack_.clear();
  return true;
}

std::vector<size_t> QuerySession::AddPattern(const Graph& pattern) {
  PushUndo();
  return panel_->AddPattern(pattern);
}

bool QuerySession::MergeVertices(size_t a, size_t b) {
  QueryPanel snapshot = *panel_;
  if (!panel_->MergeVertices(a, b)) return false;
  undo_stack_.push_back(std::move(snapshot));
  if (undo_stack_.size() > max_history_) undo_stack_.erase(undo_stack_.begin());
  redo_stack_.clear();
  return true;
}

bool QuerySession::DeleteVertex(size_t v) {
  QueryPanel snapshot = *panel_;
  if (!panel_->DeleteVertex(v)) return false;
  undo_stack_.push_back(std::move(snapshot));
  if (undo_stack_.size() > max_history_) undo_stack_.erase(undo_stack_.begin());
  redo_stack_.clear();
  return true;
}

bool QuerySession::DeleteEdge(size_t a, size_t b) {
  QueryPanel snapshot = *panel_;
  if (!panel_->DeleteEdge(a, b)) return false;
  undo_stack_.push_back(std::move(snapshot));
  if (undo_stack_.size() > max_history_) undo_stack_.erase(undo_stack_.begin());
  redo_stack_.clear();
  return true;
}

bool QuerySession::Undo() {
  if (undo_stack_.empty()) return false;
  redo_stack_.push_back(*panel_);
  *panel_ = std::move(undo_stack_.back());
  undo_stack_.pop_back();
  return true;
}

bool QuerySession::Redo() {
  if (redo_stack_.empty()) return false;
  undo_stack_.push_back(*panel_);
  *panel_ = std::move(redo_stack_.back());
  redo_stack_.pop_back();
  return true;
}

}  // namespace vqi
