#include "vqi/interface.h"

#include <sstream>

namespace vqi {

const char* DataSourceKindName(DataSourceKind kind) {
  switch (kind) {
    case DataSourceKind::kGraphCollection:
      return "graph-collection";
    case DataSourceKind::kSingleNetwork:
      return "single-network";
  }
  return "unknown";
}

void VisualQueryInterface::ExecuteQuery(const GraphDatabase& db,
                                        size_t limit) {
  results_panel_.PopulateFromDatabase(db, query_panel_.ToGraph(), limit);
}

void VisualQueryInterface::ExecuteQuery(const Graph& network, size_t limit) {
  results_panel_.PopulateFromNetwork(network, query_panel_.ToGraph(), limit);
}

std::string VisualQueryInterface::Summary() const {
  std::ostringstream out;
  Graph query = query_panel_.ToGraph();
  out << "VQI(" << DataSourceKindName(kind_) << "): "
      << attribute_panel_.vertex_attributes().size() << " vertex attrs, "
      << attribute_panel_.edge_attributes().size() << " edge attrs, "
      << pattern_panel_.num_basic() << " basic + "
      << pattern_panel_.num_canned() << " canned patterns, query "
      << query.NumVertices() << "v/" << query.NumEdges() << "e in "
      << query_panel_.StepCount() << " steps, " << results_panel_.size()
      << " results";
  return out.str();
}

}  // namespace vqi
