#include "vqi/maintainer.h"

#include "metrics/coverage.h"

namespace vqi {

VqiMaintainer::VqiMaintainer(CatapultState state, MidasConfig config)
    : config_(std::move(config)) {
  state_.catapult = std::move(state);
  // MIDAS maintenance relies on the closed-tree feature basis.
  state_.catapult.config.use_closed_trees = true;
}

StatusOr<MaintenanceReport> VqiMaintainer::ApplyBatch(
    VisualQueryInterface& vqi, GraphDatabase& db, BatchUpdate update,
    const LabelDictionary* dict) {
  StatusOr<MaintenanceReport> report =
      ApplyBatchAndMaintain(state_, db, std::move(update), config_);
  if (!report.ok()) return report;

  // Refresh the Attribute Panel (labels may have appeared/vanished).
  vqi.attribute_panel() = AttributePanel::FromStats(db.ComputeLabelStats(), dict);

  // Refresh the canned patterns (keep basic ones).
  const std::vector<Graph>& patterns = state_.patterns();
  std::vector<double> coverages;
  coverages.reserve(patterns.size());
  for (const Graph& p : patterns) coverages.push_back(DbCoverage(db, p));
  vqi.pattern_panel().ReplaceCanned(patterns, coverages);

  // The database just changed under anything serving from it; give caches a
  // chance to drop results computed against the pre-batch state.
  for (const auto& listener : batch_listeners_) listener();
  return report;
}

void VqiMaintainer::AddBatchListener(std::function<void()> listener) {
  batch_listeners_.push_back(std::move(listener));
}

}  // namespace vqi
