#ifndef VQLIB_VQI_SERIALIZE_H_
#define VQLIB_VQI_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "vqi/interface.h"

namespace vqi {

/// Serializes a VQI (source kind, Attribute Panel, Pattern Panel) to a
/// line-oriented text format. The Query/Results panels are session state and
/// are not persisted. This is the portability story of data-driven VQIs:
/// an interface built on one machine ships as a small text artifact.
///
/// Format (one directive per line):
///   VQI1
///   kind <graph-collection|single-network>
///   vattr <label> <count> <name>
///   eattr <label> <count> <name>
///   pattern <basic|canned> <coverage>
///   <.lg graph lines: t / v / e>
///   end
std::string SerializeVqi(const VisualQueryInterface& vqi);

/// Parses the format written by SerializeVqi.
StatusOr<VisualQueryInterface> ParseVqi(const std::string& text);

/// Saves/loads a VQI to/from a file.
Status SaveVqi(const VisualQueryInterface& vqi, const std::string& path);
StatusOr<VisualQueryInterface> LoadVqi(const std::string& path);

}  // namespace vqi

#endif  // VQLIB_VQI_SERIALIZE_H_
