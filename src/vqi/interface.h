#ifndef VQLIB_VQI_INTERFACE_H_
#define VQLIB_VQI_INTERFACE_H_

#include <string>

#include "vqi/panels.h"

namespace vqi {

/// What kind of repository the VQI fronts (drives which construction
/// pipeline populated the Pattern Panel and how queries execute).
enum class DataSourceKind {
  kGraphCollection,  // many small/medium data graphs (CATAPULT territory)
  kSingleNetwork,    // one large network (TATTOO territory)
};

const char* DataSourceKindName(DataSourceKind kind);

/// A headless visual query interface: the four panels of the classic VQI
/// layout (tutorial §2.1) with the Attribute and Pattern panels populated
/// data-driven. The GUI rendering is out of scope (see DESIGN.md §2 on the
/// simulation substitution); everything a GUI would bind to is here.
class VisualQueryInterface {
 public:
  VisualQueryInterface() = default;
  VisualQueryInterface(DataSourceKind kind, AttributePanel attributes,
                       PatternPanel patterns)
      : kind_(kind),
        attribute_panel_(std::move(attributes)),
        pattern_panel_(std::move(patterns)) {}

  DataSourceKind kind() const { return kind_; }
  void set_kind(DataSourceKind kind) { kind_ = kind; }

  const AttributePanel& attribute_panel() const { return attribute_panel_; }
  AttributePanel& attribute_panel() { return attribute_panel_; }

  const PatternPanel& pattern_panel() const { return pattern_panel_; }
  PatternPanel& pattern_panel() { return pattern_panel_; }

  const QueryPanel& query_panel() const { return query_panel_; }
  QueryPanel& query_panel() { return query_panel_; }

  const ResultsPanel& results_panel() const { return results_panel_; }

  /// Executes the current query against a graph collection.
  void ExecuteQuery(const GraphDatabase& db, size_t limit = 100);

  /// Executes the current query against a single network.
  void ExecuteQuery(const Graph& network, size_t limit = 100);

  /// Human-readable snapshot of the interface (panel sizes, query state).
  std::string Summary() const;

 private:
  DataSourceKind kind_ = DataSourceKind::kGraphCollection;
  AttributePanel attribute_panel_;
  PatternPanel pattern_panel_;
  QueryPanel query_panel_;
  ResultsPanel results_panel_;
};

}  // namespace vqi

#endif  // VQLIB_VQI_INTERFACE_H_
