#ifndef VQLIB_VQI_EXPLORER_H_
#define VQLIB_VQI_EXPLORER_H_

#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "match/vf2.h"

namespace vqi {

/// Bottom-up search support (tutorial §2.1: "she may get acquainted to the
/// key substructures that exist in the dataset through representative
/// objects to galvanize query formulation"; PLAYPEN exposes exactly this on
/// large networks): starting from a canned pattern the user spotted in the
/// Pattern Panel, surface concrete places where it lives in the data,
/// together with enough surrounding context to keep exploring.

/// One exploration hit: a pattern occurrence and its neighborhood.
struct ExplorationRegion {
  /// The embedding that seeded this region (pattern vertex -> network
  /// vertex, ids in the original network).
  Embedding seed_embedding;
  /// Induced subgraph of all vertices within `hops` of the embedding
  /// (vertex ids remapped densely; labels preserved).
  Graph region;
  /// For every region vertex, whether it is part of the seed embedding —
  /// a GUI would highlight these.
  std::vector<bool> in_embedding;
};

struct ExploreOptions {
  /// Number of distinct regions to return (distinct seed embeddings).
  size_t num_regions = 3;
  /// Neighborhood radius around the embedding.
  size_t hops = 1;
  /// Cap on region size (BFS stops adding vertices beyond this).
  size_t max_region_vertices = 64;
  /// Search budget.
  uint64_t max_steps = 500000;
};

/// Finds occurrences of `pattern` in `network` and cuts out their
/// neighborhoods. Embeddings sharing their full vertex set are reported
/// once.
std::vector<ExplorationRegion> ExploreFromPattern(
    const Graph& network, const Graph& pattern,
    const ExploreOptions& options = {});

/// Collection counterpart: ids of the data graphs containing `pattern`
/// (capped at `limit`), i.e. the corpus slice a user drills into after
/// clicking a canned pattern.
std::vector<GraphId> GraphsContainingPattern(const GraphDatabase& db,
                                             const Graph& pattern,
                                             size_t limit = 50);

}  // namespace vqi

#endif  // VQLIB_VQI_EXPLORER_H_
