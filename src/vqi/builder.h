#ifndef VQLIB_VQI_BUILDER_H_
#define VQLIB_VQI_BUILDER_H_

#include "catapult/catapult.h"
#include "common/status.h"
#include "tattoo/tattoo.h"
#include "vqi/interface.h"

namespace vqi {

/// Result of a data-driven VQI construction run.
struct VqiBuildResult {
  VisualQueryInterface vqi;
  /// Retained CATAPULT state (collection builds only) for maintenance.
  CatapultState catapult_state;
  /// Selection statistics of the underlying pipeline.
  CatapultStats catapult_stats;  // collection builds
  TattooStats tattoo_stats;      // network builds
};

/// Builds a complete data-driven VQI for a collection of data graphs: the
/// Attribute Panel from a repository scan, basic patterns over the dominant
/// label, canned patterns from CATAPULT. This is the "plug-and-play"
/// construction path the tutorial advocates — no hand coding per data
/// source.
StatusOr<VqiBuildResult> BuildVqiForDatabase(const GraphDatabase& db,
                                             const CatapultConfig& config,
                                             const LabelDictionary* dict = nullptr);

/// Same for one large network, with TATTOO selecting the canned patterns.
StatusOr<VqiBuildResult> BuildVqiForNetwork(const Graph& network,
                                            const TattooConfig& config,
                                            const LabelDictionary* dict = nullptr);

/// A manually-constructed baseline VQI: identical Attribute Panel but only
/// the basic patterns (this is how the surveyed usability studies model the
/// manual competitor — no data-driven canned patterns).
VisualQueryInterface BuildManualBaselineVqi(const LabelStats& stats,
                                            DataSourceKind kind,
                                            const LabelDictionary* dict = nullptr);

}  // namespace vqi

#endif  // VQLIB_VQI_BUILDER_H_
