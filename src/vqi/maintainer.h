#ifndef VQLIB_VQI_MAINTAINER_H_
#define VQLIB_VQI_MAINTAINER_H_

#include "common/status.h"
#include "midas/midas.h"
#include "vqi/interface.h"

namespace vqi {

/// Keeps a collection-backed VQI fresh as the repository evolves, by
/// wrapping MIDAS: batch updates are applied to the database, the canned
/// patterns are maintained, and the VQI's Attribute and Pattern panels are
/// refreshed in place.
class VqiMaintainer {
 public:
  /// `state` is the CATAPULT state returned by BuildVqiForDatabase (moved
  /// in). The maintainer owns it from here on.
  VqiMaintainer(CatapultState state, MidasConfig config);

  /// Applies `update` to `db`, maintains the pattern set, refreshes the
  /// panels of `vqi`. Returns the MIDAS maintenance report.
  StatusOr<MaintenanceReport> ApplyBatch(VisualQueryInterface& vqi,
                                         GraphDatabase& db,
                                         BatchUpdate update,
                                         const LabelDictionary* dict = nullptr);

  const MidasState& state() const { return state_; }

 private:
  MidasState state_;
  MidasConfig config_;
};

}  // namespace vqi

#endif  // VQLIB_VQI_MAINTAINER_H_
