#ifndef VQLIB_VQI_MAINTAINER_H_
#define VQLIB_VQI_MAINTAINER_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "midas/midas.h"
#include "vqi/interface.h"

namespace vqi {

/// Keeps a collection-backed VQI fresh as the repository evolves, by
/// wrapping MIDAS: batch updates are applied to the database, the canned
/// patterns are maintained, and the VQI's Attribute and Pattern panels are
/// refreshed in place.
class VqiMaintainer {
 public:
  /// `state` is the CATAPULT state returned by BuildVqiForDatabase (moved
  /// in). The maintainer owns it from here on.
  VqiMaintainer(CatapultState state, MidasConfig config);

  /// Applies `update` to `db`, maintains the pattern set, refreshes the
  /// panels of `vqi`. Returns the MIDAS maintenance report.
  StatusOr<MaintenanceReport> ApplyBatch(VisualQueryInterface& vqi,
                                         GraphDatabase& db,
                                         BatchUpdate update,
                                         const LabelDictionary* dict = nullptr);

  /// Registers `listener` to run after every successfully applied batch,
  /// once the database and panels reflect the update. Serving layers hook
  /// their cache invalidation here (e.g. QueryService::InvalidateCache) so
  /// maintenance can never leave stale match counts being served. Listeners
  /// run on the ApplyBatch caller's thread, in registration order; they must
  /// not call back into this maintainer.
  void AddBatchListener(std::function<void()> listener);

  const MidasState& state() const { return state_; }

 private:
  MidasState state_;
  MidasConfig config_;
  std::vector<std::function<void()>> batch_listeners_;
};

}  // namespace vqi

#endif  // VQLIB_VQI_MAINTAINER_H_
