#include "vqi/panels.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "graph/graph_builder.h"

namespace vqi {

AttributePanel AttributePanel::FromStats(const LabelStats& stats,
                                         const LabelDictionary* dict) {
  AttributePanel panel;
  for (const auto& [label, count] : stats.vertex_label_counts) {
    AttributeEntry entry;
    entry.label = label;
    entry.count = count;
    entry.name = dict ? dict->Name(label) : "L" + std::to_string(label);
    panel.vertex_attributes_.push_back(std::move(entry));
  }
  for (const auto& [label, count] : stats.edge_label_counts) {
    AttributeEntry entry;
    entry.label = label;
    entry.count = count;
    entry.name = dict ? dict->Name(label) : "L" + std::to_string(label);
    panel.edge_attributes_.push_back(std::move(entry));
  }
  auto by_count = [](const AttributeEntry& a, const AttributeEntry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.label < b.label;
  };
  std::sort(panel.vertex_attributes_.begin(), panel.vertex_attributes_.end(),
            by_count);
  std::sort(panel.edge_attributes_.begin(), panel.edge_attributes_.end(),
            by_count);
  return panel;
}

Label AttributePanel::DominantVertexLabel() const {
  return vertex_attributes_.empty() ? 0 : vertex_attributes_.front().label;
}

void PatternPanel::AddBasic(Graph pattern) {
  PatternEntry entry;
  entry.graph = std::move(pattern);
  entry.is_basic = true;
  // Basic patterns precede canned ones.
  auto first_canned = std::find_if(
      entries_.begin(), entries_.end(),
      [](const PatternEntry& e) { return !e.is_basic; });
  entries_.insert(first_canned, std::move(entry));
}

void PatternPanel::AddCanned(Graph pattern, double coverage) {
  PatternEntry entry;
  entry.graph = std::move(pattern);
  entry.is_basic = false;
  entry.coverage = coverage;
  entries_.push_back(std::move(entry));
}

std::vector<Graph> PatternPanel::AllPatterns() const {
  std::vector<Graph> out;
  out.reserve(entries_.size());
  for (const PatternEntry& e : entries_) out.push_back(e.graph);
  return out;
}

std::vector<Graph> PatternPanel::CannedPatterns() const {
  std::vector<Graph> out;
  for (const PatternEntry& e : entries_) {
    if (!e.is_basic) out.push_back(e.graph);
  }
  return out;
}

size_t PatternPanel::num_basic() const {
  size_t count = 0;
  for (const PatternEntry& e : entries_) count += e.is_basic ? 1 : 0;
  return count;
}

size_t PatternPanel::num_canned() const { return size() - num_basic(); }

void PatternPanel::ReplaceCanned(const std::vector<Graph>& patterns,
                                 const std::vector<double>& coverages) {
  VQI_CHECK_EQ(patterns.size(), coverages.size());
  entries_.erase(std::remove_if(
                     entries_.begin(), entries_.end(),
                     [](const PatternEntry& e) { return !e.is_basic; }),
                 entries_.end());
  for (size_t i = 0; i < patterns.size(); ++i) {
    AddCanned(patterns[i], coverages[i]);
  }
}

std::vector<Graph> PatternPanel::DefaultBasicPatterns(Label vertex_label,
                                                      Label edge_label) {
  return {
      builder::SingleEdge(vertex_label, vertex_label, edge_label),
      builder::Path(3, vertex_label, edge_label),
      builder::Triangle(vertex_label, edge_label),
  };
}

uint64_t QueryPanel::EdgeKey(size_t a, size_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

size_t QueryPanel::AddVertex(Label label) {
  vertices_.push_back(VertexSlot{label, true});
  history_.push_back(EditOp{EditOp::kAddVertex});
  return vertices_.size() - 1;
}

bool QueryPanel::AddEdge(size_t a, size_t b, Label label) {
  if (!Alive(a) || !Alive(b) || a == b) return false;
  uint64_t key = EdgeKey(a, b);
  for (const auto& [k, l] : edges_) {
    if (k == key) return false;
  }
  edges_.emplace_back(key, label);
  history_.push_back(EditOp{EditOp::kAddEdge});
  return true;
}

bool QueryPanel::SetVertexLabel(size_t v, Label label) {
  if (!Alive(v)) return false;
  vertices_[v].label = label;
  history_.push_back(EditOp{EditOp::kSetVertexLabel});
  return true;
}

bool QueryPanel::SetEdgeLabel(size_t a, size_t b, Label label) {
  uint64_t key = EdgeKey(a, b);
  for (auto& [k, l] : edges_) {
    if (k == key) {
      l = label;
      history_.push_back(EditOp{EditOp::kSetEdgeLabel});
      return true;
    }
  }
  return false;
}

std::vector<size_t> QueryPanel::AddPattern(const Graph& pattern) {
  std::vector<size_t> handles;
  handles.reserve(pattern.NumVertices());
  for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
    vertices_.push_back(VertexSlot{pattern.VertexLabel(v), true});
    handles.push_back(vertices_.size() - 1);
  }
  for (const Edge& e : pattern.Edges()) {
    edges_.emplace_back(EdgeKey(handles[e.u], handles[e.v]), e.label);
  }
  // Stamping a pattern is ONE user action regardless of pattern size — the
  // whole point of pattern-at-a-time formulation.
  history_.push_back(EditOp{EditOp::kAddPattern});
  return handles;
}

bool QueryPanel::MergeVertices(size_t a, size_t b) {
  if (!Alive(a) || !Alive(b) || a == b) return false;
  // Re-attach b's edges to a.
  std::vector<std::pair<uint64_t, Label>> rebuilt;
  rebuilt.reserve(edges_.size());
  auto endpoints = [](uint64_t key) {
    return std::pair<size_t, size_t>(key >> 32, key & 0xFFFFFFFFu);
  };
  for (const auto& [key, label] : edges_) {
    auto [x, y] = endpoints(key);
    if (x == b) x = a;
    if (y == b) y = a;
    if (x == y) continue;  // collapsed into a self loop: drop
    uint64_t nk = EdgeKey(x, y);
    bool dup = false;
    for (const auto& [k2, l2] : rebuilt) {
      if (k2 == nk) {
        dup = true;
        break;
      }
    }
    if (!dup) rebuilt.emplace_back(nk, label);
  }
  edges_ = std::move(rebuilt);
  vertices_[b].alive = false;
  history_.push_back(EditOp{EditOp::kMergeVertices});
  return true;
}

bool QueryPanel::DeleteVertex(size_t v) {
  if (!Alive(v)) return false;
  vertices_[v].alive = false;
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [&](const std::pair<uint64_t, Label>& e) {
                                return (e.first >> 32) == v ||
                                       (e.first & 0xFFFFFFFFu) == v;
                              }),
               edges_.end());
  history_.push_back(EditOp{EditOp::kDeleteVertex});
  return true;
}

bool QueryPanel::DeleteEdge(size_t a, size_t b) {
  uint64_t key = EdgeKey(a, b);
  auto it = std::find_if(
      edges_.begin(), edges_.end(),
      [&](const std::pair<uint64_t, Label>& e) { return e.first == key; });
  if (it == edges_.end()) return false;
  edges_.erase(it);
  history_.push_back(EditOp{EditOp::kDeleteEdge});
  return true;
}

Graph QueryPanel::ToGraph() const {
  Graph g;
  std::unordered_map<size_t, VertexId> remap;
  for (size_t v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].alive) remap[v] = g.AddVertex(vertices_[v].label);
  }
  for (const auto& [key, label] : edges_) {
    size_t a = key >> 32, b = key & 0xFFFFFFFFu;
    auto ia = remap.find(a), ib = remap.find(b);
    VQI_CHECK(ia != remap.end() && ib != remap.end());
    g.AddEdge(ia->second, ib->second, label);
  }
  return g;
}

void QueryPanel::Clear() {
  vertices_.clear();
  edges_.clear();
  history_.clear();
}

void ResultsPanel::PopulateFromDatabase(const GraphDatabase& db,
                                        const Graph& query, size_t limit) {
  results_.clear();
  for (const Graph& g : db.graphs()) {
    if (results_.size() >= limit) break;
    SubgraphMatcher matcher(query, g);
    auto embedding = matcher.FindOne();
    if (embedding.has_value()) {
      results_.push_back(ResultEntry{g.id(), std::move(*embedding)});
    }
  }
}

void ResultsPanel::PopulateFromNetwork(const Graph& network,
                                       const Graph& query, size_t limit) {
  results_.clear();
  MatchOptions options;
  options.max_embeddings = limit;
  options.max_steps = 2000000;
  SubgraphMatcher matcher(query, network, options);
  matcher.Enumerate([&](const Embedding& e) {
    results_.push_back(ResultEntry{-1, e});
    return results_.size() < limit;
  });
}

}  // namespace vqi
