#ifndef VQLIB_VQI_PANELS_H_
#define VQLIB_VQI_PANELS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "graph/graph_io.h"
#include "match/vf2.h"

namespace vqi {

/// One row of the Attribute Panel: a node/edge label with its display name
/// and its frequency in the underlying repository.
struct AttributeEntry {
  Label label = 0;
  std::string name;
  size_t count = 0;
};

/// The Attribute Panel of a VQI: the label vocabulary of the data source,
/// ordered by descending frequency. Data-driven: populated by a single
/// traversal of the repository (tutorial §2.3).
class AttributePanel {
 public:
  AttributePanel() = default;

  /// Builds the panel from repository label statistics; `dict` (optional)
  /// supplies display names.
  static AttributePanel FromStats(const LabelStats& stats,
                                  const LabelDictionary* dict = nullptr);

  const std::vector<AttributeEntry>& vertex_attributes() const {
    return vertex_attributes_;
  }
  const std::vector<AttributeEntry>& edge_attributes() const {
    return edge_attributes_;
  }

  /// Most frequent vertex label (0 if the panel is empty).
  Label DominantVertexLabel() const;

  size_t size() const {
    return vertex_attributes_.size() + edge_attributes_.size();
  }

 private:
  std::vector<AttributeEntry> vertex_attributes_;
  std::vector<AttributeEntry> edge_attributes_;
};

/// One pattern exposed in the Pattern Panel.
struct PatternEntry {
  Graph graph;
  /// Basic patterns (size <= z, typically edge/2-path/triangle) vs canned
  /// patterns (larger, data-driven).
  bool is_basic = false;
  /// Coverage fraction at selection time, used for display ordering.
  double coverage = 0.0;
};

/// The Pattern Panel: basic patterns plus the data-driven canned patterns.
class PatternPanel {
 public:
  PatternPanel() = default;

  void AddBasic(Graph pattern);
  void AddCanned(Graph pattern, double coverage);

  const std::vector<PatternEntry>& entries() const { return entries_; }

  /// All pattern graphs, basic first then canned (the order a user browses).
  std::vector<Graph> AllPatterns() const;

  /// Only the canned patterns.
  std::vector<Graph> CannedPatterns() const;

  size_t num_basic() const;
  size_t num_canned() const;
  size_t size() const { return entries_.size(); }

  /// Replaces the canned patterns (basic ones are kept) — the maintenance
  /// entry point used by MIDAS.
  void ReplaceCanned(const std::vector<Graph>& patterns,
                     const std::vector<double>& coverages);

  /// The standard basic patterns over the dominant vertex label: single
  /// edge, 2-path, triangle (size z <= 3; tutorial §2.3).
  static std::vector<Graph> DefaultBasicPatterns(Label vertex_label,
                                                 Label edge_label = 0);

 private:
  std::vector<PatternEntry> entries_;
};

/// One recorded edit operation in the Query Panel (the atomic actions whose
/// count is the "number of steps" usability measure).
struct EditOp {
  enum Kind {
    kAddVertex,
    kAddEdge,
    kSetVertexLabel,
    kSetEdgeLabel,
    kAddPattern,
    kMergeVertices,
    kDeleteVertex,
    kDeleteEdge,
  };
  Kind kind = kAddVertex;
};

/// The Query Panel: an editable query graph supporting both edge-at-a-time
/// construction and pattern-at-a-time stamping with merges. Vertices carry
/// stable handles that survive deletions.
class QueryPanel {
 public:
  QueryPanel() = default;

  /// Adds a vertex; returns its stable handle.
  size_t AddVertex(Label label);

  /// Adds an edge between two live vertices; false on dup/self/dead.
  bool AddEdge(size_t a, size_t b, Label label = 0);

  bool SetVertexLabel(size_t v, Label label);
  bool SetEdgeLabel(size_t a, size_t b, Label label);

  /// Stamps `pattern` into the panel as a new component; returns the handle
  /// of each pattern vertex.
  std::vector<size_t> AddPattern(const Graph& pattern);

  /// Merges vertex `b` into `a` (the drag-connect gesture): b's edges are
  /// re-attached to a, b disappears. False when either is dead or a == b.
  bool MergeVertices(size_t a, size_t b);

  bool DeleteVertex(size_t v);
  bool DeleteEdge(size_t a, size_t b);

  /// Compacts the live vertices/edges into a Graph (query execution input).
  Graph ToGraph() const;

  const std::vector<EditOp>& history() const { return history_; }
  size_t StepCount() const { return history_.size(); }

  void Clear();

 private:
  struct VertexSlot {
    Label label = 0;
    bool alive = false;
  };
  bool Alive(size_t v) const { return v < vertices_.size() && vertices_[v].alive; }
  static uint64_t EdgeKey(size_t a, size_t b);

  std::vector<VertexSlot> vertices_;
  // Edge key ((min<<32)|max) -> label.
  std::vector<std::pair<uint64_t, Label>> edges_;
  std::vector<EditOp> history_;
};

/// One match in the Results Panel.
struct ResultEntry {
  /// Id of the data graph containing the match (-1 for single-network VQIs).
  GraphId graph_id = -1;
  /// Query vertex i maps to embedding[i] in that graph.
  Embedding embedding;
};

/// The Results Panel: matches of the current query against the repository.
class ResultsPanel {
 public:
  ResultsPanel() = default;

  /// Runs the query against a graph collection; keeps up to `limit` matches
  /// (one embedding per matching graph).
  void PopulateFromDatabase(const GraphDatabase& db, const Graph& query,
                            size_t limit = 100);

  /// Runs the query against one network; keeps up to `limit` embeddings.
  void PopulateFromNetwork(const Graph& network, const Graph& query,
                           size_t limit = 100);

  const std::vector<ResultEntry>& results() const { return results_; }
  size_t size() const { return results_.size(); }
  void Clear() { results_.clear(); }

 private:
  std::vector<ResultEntry> results_;
};

}  // namespace vqi

#endif  // VQLIB_VQI_PANELS_H_
