#include "vqi/serialize.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "graph/graph_io.h"

namespace vqi {

std::string SerializeVqi(const VisualQueryInterface& vqi) {
  std::ostringstream out;
  out << "VQI1\n";
  out << "kind " << DataSourceKindName(vqi.kind()) << "\n";
  for (const AttributeEntry& e : vqi.attribute_panel().vertex_attributes()) {
    out << "vattr " << e.label << " " << e.count << " " << e.name << "\n";
  }
  for (const AttributeEntry& e : vqi.attribute_panel().edge_attributes()) {
    out << "eattr " << e.label << " " << e.count << " " << e.name << "\n";
  }
  for (const PatternEntry& p : vqi.pattern_panel().entries()) {
    out << "pattern " << (p.is_basic ? "basic" : "canned") << " "
        << p.coverage << "\n";
    out << io::WriteGraph(p.graph);
    out << "end\n";
  }
  return out.str();
}

StatusOr<VisualQueryInterface> ParseVqi(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " + why);
  };

  if (!std::getline(in, line) || StripWhitespace(line) != "VQI1") {
    return Status::ParseError("missing VQI1 header");
  }
  line_no = 1;

  DataSourceKind kind = DataSourceKind::kGraphCollection;
  AttributePanel attributes;
  PatternPanel patterns;
  // AttributePanel has no incremental API; accumulate stats + names and
  // build at the end.
  LabelStats stats;
  LabelDictionary dict;

  std::string pattern_block;
  bool in_pattern = false;
  bool pattern_is_basic = false;
  double pattern_coverage = 0.0;

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    if (in_pattern) {
      if (stripped == "end") {
        StatusOr<Graph> g = io::ParseGraph(pattern_block);
        if (!g.ok()) return g.status();
        if (pattern_is_basic) {
          patterns.AddBasic(std::move(*g));
        } else {
          patterns.AddCanned(std::move(*g), pattern_coverage);
        }
        in_pattern = false;
        pattern_block.clear();
      } else {
        pattern_block += std::string(stripped) + "\n";
      }
      continue;
    }
    std::vector<std::string> tokens = Split(stripped, ' ');
    if (tokens[0] == "kind") {
      if (tokens.size() != 2) return fail("kind needs one argument");
      if (tokens[1] == "graph-collection") {
        kind = DataSourceKind::kGraphCollection;
      } else if (tokens[1] == "single-network") {
        kind = DataSourceKind::kSingleNetwork;
      } else {
        return fail("unknown kind '" + tokens[1] + "'");
      }
    } else if (tokens[0] == "vattr" || tokens[0] == "eattr") {
      if (tokens.size() < 4) return fail("attr needs label, count, name");
      int64_t label = 0, count = 0;
      if (!ParseInt64(tokens[1], &label) || !ParseInt64(tokens[2], &count) ||
          label < 0 || count < 0) {
        return fail("bad attr numbers");
      }
      // Name = remainder (may contain spaces).
      std::vector<std::string> name_parts(tokens.begin() + 3, tokens.end());
      dict.SetName(static_cast<Label>(label), Join(name_parts, " "));
      auto& counts = tokens[0] == "vattr" ? stats.vertex_label_counts
                                          : stats.edge_label_counts;
      counts[static_cast<Label>(label)] = static_cast<size_t>(count);
    } else if (tokens[0] == "pattern") {
      if (tokens.size() != 3) return fail("pattern needs kind and coverage");
      pattern_is_basic = tokens[1] == "basic";
      if (!pattern_is_basic && tokens[1] != "canned") {
        return fail("pattern kind must be basic|canned");
      }
      if (!ParseDouble(tokens[2], &pattern_coverage)) {
        return fail("bad coverage");
      }
      in_pattern = true;
      pattern_block.clear();
    } else {
      return fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (in_pattern) return Status::ParseError("unterminated pattern block");

  attributes = AttributePanel::FromStats(stats, &dict);
  return VisualQueryInterface(kind, std::move(attributes),
                              std::move(patterns));
}

Status SaveVqi(const VisualQueryInterface& vqi, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << SerializeVqi(vqi);
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<VisualQueryInterface> LoadVqi(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseVqi(buffer.str());
}

}  // namespace vqi
