#ifndef VQLIB_VQI_SUGGESTION_H_
#define VQLIB_VQI_SUGGESTION_H_

#include <map>
#include <tuple>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"

namespace vqi {

/// One ranked auto-suggestion: "from a vertex labeled `from_label`, users of
/// this repository most often continue with an `edge_label` edge to a
/// `to_label` vertex" (seen `support` times in the data).
struct EdgeSuggestion {
  Label from_label = 0;
  Label edge_label = 0;
  Label to_label = 0;
  size_t support = 0;
};

/// Data-driven query auto-suggestion, in the spirit of the surveyed VIIQ
/// (auto-suggestion-enabled visual interfaces) and PICASSO (exploratory
/// search of connected substructures): a small index over the repository
/// that, given the vertex a user is extending, ranks the most plausible
/// next edges, and, given a partial query, finds the canned patterns that
/// contain it (so the panel can highlight ways to grow the query).
class SuggestionIndex {
 public:
  SuggestionIndex() = default;

  /// Scans every edge of every graph (both directions) and tabulates
  /// (from label, edge label, to label) frequencies.
  static SuggestionIndex Build(const GraphDatabase& db);

  /// Same, over one large network.
  static SuggestionIndex BuildFromNetwork(const Graph& network);

  /// Top-`k` continuations from a vertex labeled `from`, by support.
  std::vector<EdgeSuggestion> SuggestFrom(Label from, size_t k) const;

  /// Top-`k` continuations for `focus` inside `query` (uses the focus
  /// vertex's label; present for API symmetry with a GUI callback).
  std::vector<EdgeSuggestion> SuggestNextEdges(const Graph& query,
                                               VertexId focus,
                                               size_t k) const;

  /// Total number of distinct (from, edge, to) triples indexed.
  size_t size() const { return counts_.size(); }

 private:
  // (from, edge label, to) -> occurrences. Both orientations are indexed.
  std::map<std::tuple<Label, Label, Label>, size_t> counts_;
};

/// Exploratory search: indices (into `patterns`) of the canned patterns
/// that contain the current partial `query` as a subgraph, smallest pattern
/// first — i.e. the panel entries that can absorb the user's query so far.
/// `query` must be non-empty; an empty query matches every pattern.
std::vector<size_t> PatternsContainingQuery(const Graph& query,
                                            const std::vector<Graph>& patterns,
                                            size_t k);

}  // namespace vqi

#endif  // VQLIB_VQI_SUGGESTION_H_
