#include "vqi/explorer.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "graph/graph_builder.h"

namespace vqi {

std::vector<ExplorationRegion> ExploreFromPattern(
    const Graph& network, const Graph& pattern,
    const ExploreOptions& options) {
  std::vector<ExplorationRegion> regions;
  if (pattern.NumVertices() == 0 || network.NumVertices() == 0) {
    return regions;
  }

  MatchOptions match;
  match.max_steps = options.max_steps;
  SubgraphMatcher matcher(pattern, network, match);
  std::set<std::vector<VertexId>> seen_vertex_sets;
  matcher.Enumerate([&](const Embedding& embedding) {
    std::vector<VertexId> key(embedding.begin(), embedding.end());
    std::sort(key.begin(), key.end());
    if (!seen_vertex_sets.insert(key).second) {
      return true;  // an automorphic image of a known occurrence
    }
    // BFS out to `hops` from the embedding.
    std::unordered_map<VertexId, size_t> distance;
    std::deque<VertexId> queue;
    for (VertexId v : embedding) {
      distance[v] = 0;
      queue.push_back(v);
    }
    std::vector<VertexId> members;
    while (!queue.empty() && members.size() < options.max_region_vertices) {
      VertexId v = queue.front();
      queue.pop_front();
      members.push_back(v);
      if (distance[v] >= options.hops) continue;
      for (const Neighbor& nb : network.Neighbors(v)) {
        if (!distance.count(nb.vertex)) {
          distance[nb.vertex] = distance[v] + 1;
          queue.push_back(nb.vertex);
        }
      }
    }
    ExplorationRegion region;
    region.seed_embedding = embedding;
    region.region = InducedSubgraph(network, members);
    std::unordered_set<VertexId> embedded(embedding.begin(), embedding.end());
    region.in_embedding.reserve(members.size());
    for (VertexId v : members) {
      region.in_embedding.push_back(embedded.count(v) > 0);
    }
    regions.push_back(std::move(region));
    return regions.size() < options.num_regions;
  });
  return regions;
}

std::vector<GraphId> GraphsContainingPattern(const GraphDatabase& db,
                                             const Graph& pattern,
                                             size_t limit) {
  std::vector<GraphId> ids;
  for (const Graph& g : db.graphs()) {
    if (ids.size() >= limit) break;
    if (ContainsSubgraph(g, pattern)) ids.push_back(g.id());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace vqi
