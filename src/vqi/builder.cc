#include "vqi/builder.h"

#include "metrics/coverage.h"

namespace vqi {

namespace {

PatternPanel PanelWithBasics(const AttributePanel& attributes) {
  PatternPanel panel;
  Label dominant = attributes.DominantVertexLabel();
  for (Graph& basic : PatternPanel::DefaultBasicPatterns(dominant)) {
    panel.AddBasic(std::move(basic));
  }
  return panel;
}

}  // namespace

StatusOr<VqiBuildResult> BuildVqiForDatabase(const GraphDatabase& db,
                                             const CatapultConfig& config,
                                             const LabelDictionary* dict) {
  StatusOr<CatapultResult> selection = RunCatapult(db, config);
  if (!selection.ok()) return selection.status();

  VqiBuildResult result;
  AttributePanel attributes =
      AttributePanel::FromStats(db.ComputeLabelStats(), dict);
  PatternPanel patterns = PanelWithBasics(attributes);
  for (const Graph& p : selection->patterns()) {
    patterns.AddCanned(p, DbCoverage(db, p));
  }
  result.vqi = VisualQueryInterface(DataSourceKind::kGraphCollection,
                                    std::move(attributes), std::move(patterns));
  result.catapult_state = std::move(selection->state);
  result.catapult_stats = selection->stats;
  return result;
}

StatusOr<VqiBuildResult> BuildVqiForNetwork(const Graph& network,
                                            const TattooConfig& config,
                                            const LabelDictionary* dict) {
  StatusOr<TattooResult> selection = RunTattoo(network, config);
  if (!selection.ok()) return selection.status();

  // Label stats of the single network.
  LabelStats stats;
  for (VertexId v = 0; v < network.NumVertices(); ++v) {
    ++stats.vertex_label_counts[network.VertexLabel(v)];
  }
  for (const Edge& e : network.Edges()) {
    ++stats.edge_label_counts[e.label];
  }

  VqiBuildResult result;
  AttributePanel attributes = AttributePanel::FromStats(stats, dict);
  PatternPanel patterns = PanelWithBasics(attributes);
  for (const Graph& p : selection->patterns) {
    patterns.AddCanned(p, NetworkSetCoverage(network, {p}, config.coverage));
  }
  result.vqi = VisualQueryInterface(DataSourceKind::kSingleNetwork,
                                    std::move(attributes), std::move(patterns));
  result.tattoo_stats = selection->stats;
  return result;
}

VisualQueryInterface BuildManualBaselineVqi(const LabelStats& stats,
                                            DataSourceKind kind,
                                            const LabelDictionary* dict) {
  AttributePanel attributes = AttributePanel::FromStats(stats, dict);
  PatternPanel patterns = PanelWithBasics(attributes);
  return VisualQueryInterface(kind, std::move(attributes),
                              std::move(patterns));
}

}  // namespace vqi
