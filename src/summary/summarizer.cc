#include "summary/summarizer.h"

#include <algorithm>

#include "metrics/cognitive_load.h"

namespace vqi {

GraphSummary SummarizeWithPatterns(const Graph& g,
                                   const std::vector<Graph>& vocabulary,
                                   const SummaryConfig& config) {
  GraphSummary summary;
  std::vector<Edge> edges = g.Edges();
  if (edges.empty() || vocabulary.empty()) {
    summary.uncovered_edges = edges.size();
    return summary;
  }

  // Precompute per-pattern coverage bitsets.
  std::vector<Bitset> coverage;
  coverage.reserve(vocabulary.size());
  for (const Graph& p : vocabulary) {
    coverage.push_back(NetworkCoverageBits(g, edges, p, config.coverage));
  }

  Bitset covered(edges.size());
  std::vector<bool> used(vocabulary.size(), false);
  while (summary.patterns.size() < config.max_patterns) {
    size_t best = vocabulary.size();
    size_t best_gain = 0;
    for (size_t i = 0; i < vocabulary.size(); ++i) {
      if (used[i]) continue;
      size_t gain = covered.NewBits(coverage[i]);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == vocabulary.size() || best_gain == 0) break;
    used[best] = true;
    covered.UnionWith(coverage[best]);
    summary.patterns.push_back(vocabulary[best]);
    summary.explained_edges.push_back(best_gain);
  }

  summary.edge_coverage = static_cast<double>(covered.Count()) /
                          static_cast<double>(edges.size());
  summary.uncovered_edges = edges.size() - covered.Count();
  summary.mean_cognitive_load = SetCognitiveLoad(summary.patterns);
  return summary;
}

}  // namespace vqi
