#ifndef VQLIB_SUMMARY_SUMMARIZER_H_
#define VQLIB_SUMMARY_SUMMARIZER_H_

#include <vector>

#include "graph/graph.h"
#include "metrics/coverage.h"

namespace vqi {

/// Pattern-based graph summarization ("Beyond VQIs", tutorial §2.5):
/// because canned patterns have high coverage, high diversity and low
/// cognitive load, a small set of them plus usage counts makes a
/// visualization-friendly summary of a graph.
struct SummaryConfig {
  /// Use at most this many distinct patterns in the summary.
  size_t max_patterns = 10;
  /// Embedding-enumeration budget per pattern.
  NetworkCoverageOptions coverage;
};

/// The summary: chosen patterns, how much of the graph each one explains,
/// and the residual.
struct GraphSummary {
  std::vector<Graph> patterns;
  /// patterns[i] newly explained edge count at pick time (greedy marginal).
  std::vector<size_t> explained_edges;
  /// Fraction of graph edges covered by the union of the chosen patterns.
  double edge_coverage = 0.0;
  size_t uncovered_edges = 0;
  /// Mean cognitive load of the summary vocabulary (lower = more readable).
  double mean_cognitive_load = 0.0;
};

/// Greedy set-cover of the graph's edges using the given pattern
/// vocabulary: repeatedly pick the pattern whose embeddings cover the most
/// still-uncovered edges.
GraphSummary SummarizeWithPatterns(const Graph& g,
                                   const std::vector<Graph>& vocabulary,
                                   const SummaryConfig& config = {});

}  // namespace vqi

#endif  // VQLIB_SUMMARY_SUMMARIZER_H_
