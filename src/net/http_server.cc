#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "net/json.h"

namespace vqi {
namespace net {
namespace {

/// JSON error body the server sends for requests the handler never sees.
std::string ErrorBody(const std::string& message) {
  return "{\"error\":" + JsonEscape(message) + "}";
}

ThreadPoolOptions ConnectionPoolOptions(const HttpServerOptions& options) {
  ThreadPoolOptions pool;
  pool.num_threads = options.num_threads;
  pool.queue_capacity = options.queue_capacity;
  pool.metrics = options.metrics;
  pool.metric_labels = {{"pool", "http"}};
  return pool;
}

}  // namespace

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      pool_(ConnectionPoolOptions(options_)) {
  VQI_CHECK(handler_ != nullptr) << "HttpServer requires a handler";
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& registry = *options_.metrics;
    connections_total_ = &registry.GetCounter(
        "vqi_http_connections_total", "TCP connections accepted.");
    connections_rejected_total_ = &registry.GetCounter(
        "vqi_http_connections_rejected_total",
        "Connections answered 503 because the worker queue was full.");
    connections_active_ = &registry.GetGauge(
        "vqi_http_connections_active", "Connections currently being served.");
    requests_total_ = &registry.GetCounter(
        "vqi_http_requests_total", "HTTP requests that reached the handler.");
    responses_total_2xx_ = &registry.GetCounter(
        "vqi_http_responses_total", "HTTP responses by status class.",
        {{"class", "2xx"}});
    responses_total_4xx_ = &registry.GetCounter(
        "vqi_http_responses_total", "HTTP responses by status class.",
        {{"class", "4xx"}});
    responses_total_5xx_ = &registry.GetCounter(
        "vqi_http_responses_total", "HTTP responses by status class.",
        {{"class", "5xx"}});
    parse_errors_total_ = &registry.GetCounter(
        "vqi_http_parse_errors_total",
        "Requests rejected by the parser (malformed or over limits).");
    read_timeouts_total_ = &registry.GetCounter(
        "vqi_http_read_timeouts_total",
        "Connections closed at the per-connection read deadline.");
    torn_reads_total_ = &registry.GetCounter(
        "vqi_http_torn_reads_total",
        "Connections the peer abandoned mid-request.");
    request_latency_ms_ = &registry.GetHistogram(
        "vqi_http_request_latency_ms",
        "Parse-complete to response-written latency.",
        obs::Histogram::DefaultLatencyBoundsMs());
  }
}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  {
    MutexLock lock(&mutex_);
    if (started_) {
      return Status::FailedPrecondition("HttpServer already started");
    }
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Unavailable(
        "bind " + options_.bind_address + ":" +
        std::to_string(options_.port) + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status status =
        Status::Unavailable(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Shutdown() {
  {
    MutexLock lock(&mutex_);
    if (!started_ || stopped_) return;
    stopped_ = true;
    draining_ = true;
  }
  // Unblock the accept loop; shutdown (not close) so the fd stays valid
  // until the thread has observed the failure.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Grace period: in-flight connections notice draining at their next
  // request boundary and close. Laggards (mid-read, slowloris peers) get
  // their sockets shut down so their workers unblock immediately.
  Stopwatch grace;
  for (;;) {
    {
      MutexLock lock(&mutex_);
      if (active_fds_.empty()) break;
      if (grace.ElapsedMillis() >= options_.drain_grace_ms) {
        for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Joins every worker: running connection tasks finish (their sockets now
  // error out fast), queued ones observe draining and close immediately.
  pool_.Shutdown();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool HttpServer::draining() const {
  MutexLock lock(&mutex_);
  return draining_;
}

size_t HttpServer::active_connections() const {
  MutexLock lock(&mutex_);
  return active_fds_.size();
}

uint64_t HttpServer::connections_accepted() const {
  MutexLock lock(&mutex_);
  return accepted_;
}

void HttpServer::RegisterConnection(int fd) {
  MutexLock lock(&mutex_);
  ++accepted_;
  active_fds_.insert(fd);
  if (connections_active_ != nullptr) {
    connections_active_->Set(static_cast<double>(active_fds_.size()));
  }
}

void HttpServer::UnregisterConnection(int fd) {
  MutexLock lock(&mutex_);
  active_fds_.erase(fd);
  if (connections_active_ != nullptr) {
    connections_active_->Set(static_cast<double>(active_fds_.size()));
  }
}

void HttpServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down (drain) or unrecoverable
    }
    if (draining()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (connections_total_ != nullptr) connections_total_->Increment();
    RegisterConnection(fd);
    Status submitted = pool_.Submit([this, fd] { HandleConnection(fd); });
    if (!submitted.ok()) {
      // Edge admission control: tell the client to back off rather than
      // letting connections pile up unserved.
      if (connections_rejected_total_ != nullptr) {
        connections_rejected_total_->Increment();
      }
      if (responses_total_5xx_ != nullptr) responses_total_5xx_->Increment();
      // Best-effort single non-blocking send: the accept thread must never
      // block on a peer — overload, when this path runs, is exactly when an
      // unresponsive client would otherwise stall every accept. The small
      // response fits the socket buffer of any live peer; a dead one just
      // misses its 503.
      HttpResponse response;
      response.status = 503;
      response.body = ErrorBody("server overloaded, connection rejected");
      std::string wire = SerializeResponse(response, /*close=*/true);
      (void)::send(fd, wire.data(), wire.size(),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
      UnregisterConnection(fd);
      ::close(fd);
    }
  }
}

void HttpServer::HandleConnection(int fd) {
  HttpRequestParser parser(options_.parser_limits);
  size_t served = 0;
  while (ServeOne(fd, parser, served)) ++served;
  UnregisterConnection(fd);
  ::close(fd);
}

int HttpServer::PollReadable(int fd, double timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  int timeout = timeout_ms >= 1 ? static_cast<int>(timeout_ms) : 1;
  for (;;) {
    int ready = ::poll(&pfd, 1, timeout);
    if (ready < 0 && errno == EINTR) continue;
    return ready;
  }
}

bool HttpServer::ServeOne(int fd, HttpRequestParser& parser, size_t served) {
  // Request boundary: during drain the connection closes instead of
  // starting another request (responses already sent carried
  // Connection: close, so a well-behaved client is gone by now).
  if (draining()) return false;

  // Chaos: one http_read decision per request, drawn when its first bytes
  // arrive — never while idling between keep-alive requests, so the fault
  // tally is a function of the request count alone and seeded runs are
  // reproducible. Returns false when the injected fault closes the
  // connection.
  bool fault_checked = false;
  auto fault_gate = [&]() {
    if (fault_checked || options_.fault_injector == nullptr) return true;
    fault_checked = true;
    resilience::FaultDecision decision =
        options_.fault_injector->Decide(resilience::FaultPoint::kHttpRead);
    if (decision.latency_ms > 0) {
      // A slowloris peer trickling its request: the worker sits occupied.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(decision.latency_ms));
    }
    if (decision.dropped) {
      // Torn read: the peer vanished mid-request.
      if (torn_reads_total_ != nullptr) torn_reads_total_->Increment();
      return false;
    }
    if (!decision.status.ok()) {
      HttpResponse response;
      response.status = 503;
      response.body = ErrorBody(decision.status.message());
      WriteResponse(fd, response, /*close=*/true);
      return false;
    }
    return true;
  };

  HttpRequestParser::State state = parser.state();
  // A pipelined request already buffered counts as arrived.
  if (state != HttpRequestParser::State::kNeedMore && !fault_gate()) {
    return false;
  }
  // The read deadline is cumulative per request: the clock starts at the
  // request's first byte (immediately, when pipelining already buffered a
  // partial one) and the poll budget shrinks as bytes trickle in, so a
  // slowloris peer sending one byte per poll cannot hold the worker past
  // read_timeout_ms. Before the first byte the connection is merely idle
  // between keep-alive requests; each poll there gets the full timeout.
  Stopwatch read_timer;
  bool request_started = parser.buffered_bytes() > 0;
  while (state == HttpRequestParser::State::kNeedMore) {
    double budget = options_.read_timeout_ms;
    if (request_started) {
      budget = options_.read_timeout_ms - read_timer.ElapsedMillis();
    }
    int ready = budget <= 0 ? 0 : PollReadable(fd, budget);
    if (ready == 0) {
      if (read_timeouts_total_ != nullptr) read_timeouts_total_->Increment();
      if (request_started) {
        // Mid-request deadline: answer 408 so the peer knows it fired; an
        // idle keep-alive connection just closes.
        HttpResponse response;
        response.status = 408;
        response.body = ErrorBody("read deadline exceeded");
        WriteResponse(fd, response, /*close=*/true);
      }
      return false;
    }
    if (ready < 0) return false;
    char buf[4096];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      if (request_started && torn_reads_total_ != nullptr) {
        torn_reads_total_->Increment();
      }
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (!request_started) {
      request_started = true;
      read_timer.Restart();
    }
    // Real request bytes are in hand: this is the per-request fault draw.
    // A peer that merely disconnects (recv == 0 above) draws nothing, so
    // the injected-fault tally tracks requests, not connection churn.
    if (!fault_gate()) return false;
    state = parser.Consume(std::string_view(buf, static_cast<size_t>(n)));
  }

  if (state == HttpRequestParser::State::kError) {
    if (parse_errors_total_ != nullptr) parse_errors_total_->Increment();
    HttpResponse response;
    response.status = parser.error_status();
    response.body = ErrorBody(parser.error());
    WriteResponse(fd, response, /*close=*/true);
    return false;
  }

  // kComplete: hand to the application handler.
  Stopwatch handle_timer;
  if (requests_total_ != nullptr) requests_total_->Increment();
  const HttpRequest& request = parser.request();
  HttpResponse response = handler_(request);
  bool close = !request.keep_alive() || response.close || draining() ||
               served + 1 >= options_.max_keepalive_requests;
  bool written = WriteResponse(fd, response, close);
  if (request_latency_ms_ != nullptr) {
    request_latency_ms_->Observe(handle_timer.ElapsedMillis());
  }
  if (!written || close) return false;
  parser.Reset();
  return true;
}

bool HttpServer::WriteResponse(int fd, const HttpResponse& response,
                               bool close) {
  if (response.status >= 500) {
    if (responses_total_5xx_ != nullptr) responses_total_5xx_->Increment();
  } else if (response.status >= 400) {
    if (responses_total_4xx_ != nullptr) responses_total_4xx_->Increment();
  } else {
    if (responses_total_2xx_ != nullptr) responses_total_2xx_->Increment();
  }
  return WriteAll(fd, SerializeResponse(response, close));
}

bool HttpServer::WriteAll(int fd, std::string_view data) {
  Stopwatch deadline;
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return false;
    }
    if (deadline.ElapsedMillis() >= options_.write_timeout_ms) return false;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    double remaining = options_.write_timeout_ms - deadline.ElapsedMillis();
    int ready = ::poll(&pfd, 1, remaining >= 1 ? static_cast<int>(remaining)
                                               : 1);
    if (ready < 0 && errno != EINTR) return false;
  }
  return true;
}

}  // namespace net
}  // namespace vqi
