#include "net/http_parser.h"

#include <cctype>

#include "common/strings.h"

namespace vqi {
namespace net {
namespace {

/// Parses a Content-Length value: digits only, no sign, no whitespace inside.
bool ParseContentLength(std::string_view text, size_t* out) {
  if (text.empty() || text.size() > 18) return false;
  size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *out = value;
  return true;
}

bool SplitHeaderLine(std::string_view line, std::string* key,
                     std::string* value) {
  size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  std::string_view k = line.substr(0, colon);
  // Field names may not contain whitespace (request smuggling guard).
  for (char c : k) {
    if (c == ' ' || c == '\t') return false;
  }
  *key = std::string(k);
  *value = std::string(StripWhitespace(line.substr(colon + 1)));
  return true;
}

bool EqualsIgnoreCaseAscii(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

HttpRequestParser::HttpRequestParser(HttpParserLimits limits)
    : limits_(limits) {}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(message);
  return state_;
}

bool HttpRequestParser::NextLine(std::string_view* line, size_t limit,
                                 bool* over_limit) {
  *over_limit = false;
  size_t nl = buffer_.find('\n', consumed_);
  if (nl == std::string::npos) {
    if (buffer_.size() - consumed_ > limit) *over_limit = true;
    return false;
  }
  if (nl - consumed_ > limit) {
    *over_limit = true;
    return false;
  }
  size_t end = nl;
  if (end > consumed_ && buffer_[end - 1] == '\r') --end;
  *line = std::string_view(buffer_).substr(consumed_, end - consumed_);
  consumed_ = nl + 1;
  return true;
}

HttpRequestParser::State HttpRequestParser::Consume(std::string_view data) {
  if (state_ == State::kComplete || state_ == State::kError) return state_;
  // Compact before appending: everything below `consumed_` has been copied
  // into request_ already, so dropping it keeps the buffer proportional to
  // the unparsed remainder instead of every byte the connection ever sent.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data.data(), data.size());
  return Advance();
}

HttpRequestParser::State HttpRequestParser::Advance() {
  for (;;) {
    switch (phase_) {
      case Phase::kRequestLine: {
        std::string_view line;
        bool over = false;
        if (!NextLine(&line, limits_.max_request_line_bytes, &over)) {
          if (over) return Fail(414, "request line exceeds limit");
          return state_ = State::kNeedMore;
        }
        if (line.empty()) {
          // Tolerate leading CRLFs (RFC 9112 §2.2), but bounded: a peer
          // streaming bare CRLFs must not keep the parser in kNeedMore
          // (and its connection worker occupied) indefinitely.
          leading_bytes_ += 2;
          if (leading_bytes_ > limits_.max_request_line_bytes) {
            return Fail(400, "excessive leading CRLFs before request line");
          }
          continue;
        }
        size_t sp1 = line.find(' ');
        size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
        if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
            sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= line.size() ||
            line.find(' ', sp2 + 1) != std::string_view::npos) {
          return Fail(400, "malformed request line");
        }
        request_.method = std::string(line.substr(0, sp1));
        request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
        request_.version = std::string(line.substr(sp2 + 1));
        for (char c : request_.method) {
          if (!std::isupper(static_cast<unsigned char>(c))) {
            return Fail(400, "malformed method token");
          }
        }
        if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
          return Fail(505, "unsupported HTTP version '" + request_.version +
                               "'");
        }
        phase_ = Phase::kHeaders;
        continue;
      }
      case Phase::kHeaders: {
        std::string_view line;
        bool over = false;
        size_t remaining = limits_.max_header_bytes > header_bytes_
                               ? limits_.max_header_bytes - header_bytes_
                               : 0;
        if (!NextLine(&line, remaining, &over)) {
          if (over) return Fail(431, "header block exceeds byte limit");
          return state_ = State::kNeedMore;
        }
        header_bytes_ += line.size() + 2;
        if (line.empty()) {
          // End of headers: requests that carry a body must declare its
          // length — this server does not speak chunked framing.
          std::string_view te = FindHeader(request_.headers,
                                           "transfer-encoding");
          if (!te.empty()) {
            return Fail(400, "transfer-encoding is not supported");
          }
          if (!has_content_length_ &&
              (request_.method == "POST" || request_.method == "PUT")) {
            return Fail(411, "missing Content-Length");
          }
          if (body_expected_ == 0) {
            state_ = State::kComplete;
            return state_;
          }
          phase_ = Phase::kBody;
          continue;
        }
        if (request_.headers.size() >= limits_.max_header_count) {
          return Fail(431, "too many header fields");
        }
        std::string key;
        std::string value;
        if (!SplitHeaderLine(line, &key, &value)) {
          return Fail(400, "malformed header field");
        }
        if (EqualsIgnoreCaseAscii(key, "content-length")) {
          size_t length = 0;
          if (!ParseContentLength(value, &length)) {
            return Fail(400, "malformed Content-Length");
          }
          if (has_content_length_ && length != body_expected_) {
            return Fail(400, "conflicting Content-Length fields");
          }
          if (length > limits_.max_body_bytes) {
            return Fail(413, "Content-Length exceeds body limit");
          }
          has_content_length_ = true;
          body_expected_ = length;
        }
        request_.headers.emplace_back(std::move(key), std::move(value));
        continue;
      }
      case Phase::kBody: {
        if (buffer_.size() - consumed_ < body_expected_) {
          return state_ = State::kNeedMore;
        }
        request_.body = buffer_.substr(consumed_, body_expected_);
        consumed_ += body_expected_;
        state_ = State::kComplete;
        return state_;
      }
    }
  }
}

HttpRequestParser::State HttpRequestParser::Reset() {
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  leading_bytes_ = 0;
  header_bytes_ = 0;
  body_expected_ = 0;
  has_content_length_ = false;
  phase_ = Phase::kRequestLine;
  state_ = State::kNeedMore;
  request_ = HttpRequest{};
  error_status_ = 400;
  error_.clear();
  if (buffer_.empty()) return state_;
  return Advance();
}

HttpResponseParser::State HttpResponseParser::Fail(std::string message) {
  state_ = State::kError;
  error_ = std::move(message);
  return state_;
}

HttpResponseParser::State HttpResponseParser::Consume(std::string_view data) {
  if (state_ == State::kComplete || state_ == State::kError) return state_;
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data.data(), data.size());
  return Advance();
}

HttpResponseParser::State HttpResponseParser::Advance() {
  for (;;) {
    if (phase_ == 2) {
      if (buffer_.size() - consumed_ < body_expected_) {
        return state_ = State::kNeedMore;
      }
      response_.body = buffer_.substr(consumed_, body_expected_);
      consumed_ += body_expected_;
      return state_ = State::kComplete;
    }
    size_t nl = buffer_.find('\n', consumed_);
    if (nl == std::string::npos) return state_ = State::kNeedMore;
    size_t end = nl;
    if (end > consumed_ && buffer_[end - 1] == '\r') --end;
    std::string_view line =
        std::string_view(buffer_).substr(consumed_, end - consumed_);
    consumed_ = nl + 1;
    if (phase_ == 0) {
      if (line.empty()) continue;
      // "HTTP/1.1 200 OK"
      size_t sp1 = line.find(' ');
      if (sp1 == std::string_view::npos || sp1 + 4 > line.size()) {
        return Fail("malformed status line");
      }
      response_.version = std::string(line.substr(0, sp1));
      int status = 0;
      size_t i = sp1 + 1;
      size_t digits = 0;
      for (; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
        status = status * 10 + (line[i] - '0');
        ++digits;
      }
      if (digits != 3) return Fail("malformed status code");
      response_.status = status;
      phase_ = 1;
      continue;
    }
    // Headers.
    if (line.empty()) {
      std::string_view length = FindHeader(response_.headers,
                                           "content-length");
      if (!length.empty() && !ParseContentLength(length, &body_expected_)) {
        return Fail("malformed Content-Length");
      }
      if (body_expected_ == 0) return state_ = State::kComplete;
      phase_ = 2;
      continue;
    }
    std::string key;
    std::string value;
    if (!SplitHeaderLine(line, &key, &value)) {
      return Fail("malformed header field");
    }
    response_.headers.emplace_back(std::move(key), std::move(value));
  }
}

HttpResponseParser::State HttpResponseParser::Reset() {
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  body_expected_ = 0;
  phase_ = 0;
  state_ = State::kNeedMore;
  response_ = Response{};
  error_.clear();
  if (buffer_.empty()) return state_;
  return Advance();
}

}  // namespace net
}  // namespace vqi
