#include "net/http_message.h"

#include <cctype>

namespace vqi {
namespace net {
namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string_view FindHeader(const HttpHeaders& headers,
                            std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return value;
  }
  return {};
}

std::string_view HttpRequest::path() const {
  std::string_view t = target;
  size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

bool HttpRequest::keep_alive() const {
  std::string_view connection = FindHeader(headers, "connection");
  if (EqualsIgnoreCase(connection, "close")) return false;
  if (version == "HTTP/1.0") {
    return EqualsIgnoreCase(connection, "keep-alive");
  }
  return true;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 411:
      return "Length Required";
    case 413:
      return "Content Too Large";
    case 414:
      return "URI Too Long";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool close) {
  std::string out;
  out.reserve(response.body.size() + 160);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpReasonPhrase(response.status);
  out += "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: ";
    out += response.content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace net
}  // namespace vqi
