#ifndef VQLIB_NET_HTTP_PARSER_H_
#define VQLIB_NET_HTTP_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "net/http_message.h"

namespace vqi {
namespace net {

/// Hard limits enforced while parsing, each mapped to the HTTP status the
/// server answers before closing the connection. Defaults are production
/// postures, not test conveniences: a request that exceeds any of them is
/// rejected without buffering the rest.
struct HttpParserLimits {
  size_t max_request_line_bytes = 8 * 1024;   ///< 414 when exceeded
  size_t max_header_count = 64;               ///< 431 when exceeded
  size_t max_header_bytes = 32 * 1024;        ///< 431: total header block
  size_t max_body_bytes = 1 * 1024 * 1024;    ///< 413: Content-Length cap
};

/// Incremental HTTP/1.1 request parser. Feed raw socket bytes with
/// Consume(); the parser buffers across torn reads (a request line split over
/// ten recv() calls parses identically to one). After kComplete, pipelined
/// bytes beyond the request stay buffered — Reset() begins the next request
/// from them, which is what makes keep-alive reuse allocation-free.
///
/// Not thread-safe; one parser per connection, owned by its worker.
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  explicit HttpRequestParser(HttpParserLimits limits = {});

  /// Appends `data` and advances the parse. Returns the new state; kComplete
  /// and kError are sticky until Reset().
  State Consume(std::string_view data);

  /// After kComplete: the parsed request.
  const HttpRequest& request() const { return request_; }

  /// After kError: the HTTP status to answer (400/411/413/414/431/505) and a
  /// one-line diagnostic.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  /// Discards the completed request and re-parses any buffered pipelined
  /// bytes. Returns the resulting state (kComplete again when a full
  /// pipelined request was already buffered).
  State Reset();

  State state() const { return state_; }

  /// Bytes buffered but not yet consumed by a completed request.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  enum class Phase { kRequestLine, kHeaders, kBody };

  State Advance();
  State Fail(int status, std::string message);
  /// Extracts the next CRLF- (or bare-LF-) terminated line starting at
  /// `consumed_`; false when incomplete.
  bool NextLine(std::string_view* line, size_t limit, bool* over_limit);

  HttpParserLimits limits_;
  std::string buffer_;
  size_t consumed_ = 0;     ///< bytes of buffer_ already parsed
  size_t leading_bytes_ = 0;  ///< empty lines skipped before the request line
  size_t header_bytes_ = 0;
  size_t body_expected_ = 0;
  bool has_content_length_ = false;
  Phase phase_ = Phase::kRequestLine;
  State state_ = State::kNeedMore;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_;
};

/// Incremental HTTP/1.1 response parser (status line + headers +
/// Content-Length body) for the loopback client and tests. Same buffering
/// contract as HttpRequestParser.
class HttpResponseParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  struct Response {
    int status = 0;
    std::string version;
    HttpHeaders headers;
    std::string body;
  };

  State Consume(std::string_view data);
  State state() const { return state_; }
  const Response& response() const { return response_; }
  const std::string& error() const { return error_; }
  State Reset();

 private:
  State Advance();
  State Fail(std::string message);

  std::string buffer_;
  size_t consumed_ = 0;
  size_t body_expected_ = 0;
  int phase_ = 0;  ///< 0 = status line, 1 = headers, 2 = body
  State state_ = State::kNeedMore;
  Response response_;
  std::string error_;
};

}  // namespace net
}  // namespace vqi

#endif  // VQLIB_NET_HTTP_PARSER_H_
