#ifndef VQLIB_NET_HTTP_MESSAGE_H_
#define VQLIB_NET_HTTP_MESSAGE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vqi {
namespace net {

/// Header fields in arrival order. Lookup is case-insensitive per RFC 9110.
using HttpHeaders = std::vector<std::pair<std::string, std::string>>;

/// Returns the first header named `name` (case-insensitive), or "".
std::string_view FindHeader(const HttpHeaders& headers, std::string_view name);

/// One parsed HTTP/1.1 request.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (verbatim, case-sensitive)
  std::string target;   ///< request target, e.g. "/query" or "/metrics?x=1"
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  HttpHeaders headers;
  std::string body;

  /// Path portion of `target` (everything before '?').
  std::string_view path() const;
  /// Keep-alive semantics: HTTP/1.1 defaults to persistent unless
  /// "Connection: close"; HTTP/1.0 requires "Connection: keep-alive".
  bool keep_alive() const;
};

/// One HTTP response to serialize. Handlers fill status/body/content_type;
/// the server owns Connection and Content-Length framing.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers beyond Content-Type/Content-Length/Connection.
  HttpHeaders headers;
  /// Handler-requested connection close (the server may also force it).
  bool close = false;
};

/// Canonical reason phrase for `status` ("OK", "Bad Request", ...).
const char* HttpReasonPhrase(int status);

/// Serializes `response` with Content-Length framing. `close` controls the
/// Connection header (close vs keep-alive).
std::string SerializeResponse(const HttpResponse& response, bool close);

}  // namespace net
}  // namespace vqi

#endif  // VQLIB_NET_HTTP_MESSAGE_H_
