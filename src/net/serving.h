#ifndef VQLIB_NET_SERVING_H_
#define VQLIB_NET_SERVING_H_

#include <string>

#include "common/status.h"
#include "net/http_message.h"
#include "net/json.h"
#include "service/query_service.h"
#include "service/resilience/service_client.h"

namespace vqi {

namespace shard {
class ShardedRouter;
}  // namespace shard

namespace net {

class HttpServer;

/// Decodes a POST /query JSON body into a QueryRequest. Strict: unknown
/// top-level keys are rejected so typos fail loudly instead of silently
/// running with defaults. Schema (all fields optional except `pattern`):
///
///   {
///     "kind": "match_count" | "suggest",          // default match_count
///     "pattern": {
///       "vertices": [<label>, ...],               // vertex i gets label[i]
///       "edges": [[u, v, <edge label>], ...]      // label may be omitted
///     },
///     "target": <graph id>,                       // default -1 (all graphs)
///     "targets": [<graph id>, ...],               // overrides "target"
///     "deadline_ms": <number >= 0>,               // 0 disables (default)
///     "max_embeddings": <int >= 0>,               // 0 = unlimited
///     "focus": <vertex index>,                    // suggest only
///     "top_k": <int >= 1>,                        // suggest only
///     "priority": "interactive"|"normal"|"background",
///     "allow_partial": <bool>
///   }
StatusOr<QueryRequest> QueryRequestFromJson(const JsonValue& json);

/// Full wire encoding of a QueryResult: content fields plus the transport
/// diagnostics (from_cache, coalesced, latency_ms, match_steps). Non-OK
/// results carry {"error": {"code", "message"}}.
JsonValue QueryResultToJson(const QueryResult& result);

/// The deterministic subset of a result: status code, embedding_count,
/// matched_graphs, suggestions, truncated. Excludes latency, cache/coalesce
/// provenance, and step counts — everything that legitimately varies between
/// an in-process call and a wire round trip. serve-bench compares the HTTP
/// path against direct Execute() on exactly this encoding.
JsonValue QueryResultContentJson(const QueryResult& result);

/// Maps an application Status onto an HTTP status code: OK→200,
/// InvalidArgument/ParseError→400, NotFound→404, FailedPrecondition→409,
/// Cancelled→499, ResourceExhausted/Unavailable→503, DeadlineExceeded→504,
/// rest→500.
int HttpStatusFor(const Status& status);

/// Routes requests for the three served endpoints:
///
///   GET  /metrics  — Prometheus text exposition of the wired registry
///   GET  /healthz  — liveness + saturation JSON (200 ok/degraded, 503
///                    while draining)
///   POST /query    — JSON query API over QueryService
///
/// Unknown paths get 404, wrong methods on known paths 405. Handle() runs
/// on server worker threads; QueryServing itself is stateless beyond the
/// wired components, so it is thread-safe if they are.
///
/// Can front either one QueryService (optionally through a resilience
/// client) or a shard::ShardedRouter. In router mode /query executes through
/// the router (which already runs each shard behind its own client) and
/// /healthz aggregates saturation across the fleet: summed queue depths and
/// capacities, summed shard ServiceStats, `shards` and `replicas` counts,
/// and every replica's breaker state (`shard_breakers`: a flat array when
/// R = 1, one nested array per shard when the fleet is replicated).
class QueryServing {
 public:
  struct Options {
    /// When set, /query executes through the resilience client (breaker +
    /// retry + budget) instead of calling the service directly, and /healthz
    /// reports the breaker state. Must wrap `service` and outlive this.
    /// Ignored in router mode.
    resilience::ServiceClient* client = nullptr;
    /// Registry /metrics renders. Typically the same registry every wired
    /// component reports into. Must outlive this.
    obs::MetricsRegistry* metrics = nullptr;
    /// Queue occupancy fraction at which /healthz flips "ok" → "degraded".
    double degraded_queue_fraction = 0.9;
  };

  QueryServing(QueryService* service, Options options);
  /// Router mode: fronts a sharded fleet instead of one service.
  QueryServing(shard::ShardedRouter* router, Options options);

  /// Wires the server whose drain state and connection count /healthz
  /// reports. Call once between constructing the server and Start().
  void set_server(const HttpServer* server) { server_ = server; }

  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse HandleMetrics();
  HttpResponse HandleHealthz();
  HttpResponse HandleQuery(const HttpRequest& request);

  QueryService* service_ = nullptr;
  shard::ShardedRouter* router_ = nullptr;
  Options options_;
  const HttpServer* server_ = nullptr;
};

/// JSON error body {"error": {"code", "message"}} with HttpStatusFor's
/// HTTP status; every non-OK reply QueryServing produces goes through this.
HttpResponse JsonErrorResponse(const Status& status);

}  // namespace net
}  // namespace vqi

#endif  // VQLIB_NET_SERVING_H_
