#ifndef VQLIB_NET_HTTP_CLIENT_H_
#define VQLIB_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/http_parser.h"

namespace vqi {
namespace net {

/// Minimal blocking HTTP/1.1 client for loopback benchmarking and tests:
/// one TCP connection, keep-alive reuse, Content-Length framing only. This
/// is the wire-driving half of `serve-bench --http` — it exists so the
/// benchmark exercises the server's real socket path without an external
/// curl dependency.
///
/// Not thread-safe; one client per driver thread.
class HttpClient {
 public:
  struct Options {
    double connect_timeout_ms = 2000;
    double io_timeout_ms = 10000;
  };

  HttpClient();
  explicit HttpClient(Options options);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Opens a TCP connection to host:port (dotted-quad host, e.g. loopback).
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request and reads the full response. kUnavailable on
  /// connection failures (peer reset, torn response, timeouts) — after which
  /// the connection is closed and the caller may Connect() again. `body` is
  /// sent with Content-Length framing; empty body + "GET" sends none.
  StatusOr<HttpResponseParser::Response> Roundtrip(
      const std::string& method, const std::string& target,
      std::string_view body = {},
      const std::string& content_type = "application/json");

  /// Sends raw bytes on the open connection (tests drive torn/partial
  /// requests with this).
  Status SendRaw(std::string_view data);

  /// Reads until the peer closes or the deadline, returning whatever
  /// arrived (tests inspecting raw error responses).
  std::string ReadAvailable(double timeout_ms);

 private:
  Status WriteAll(std::string_view data);

  Options options_;
  int fd_ = -1;
  /// Unconsumed bytes from the previous response (pipelined leftovers).
  HttpResponseParser parser_;
};

}  // namespace net
}  // namespace vqi

#endif  // VQLIB_NET_HTTP_CLIENT_H_
