#include "net/serving.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "net/http_server.h"
#include "obs/export.h"
#include "service/resilience/circuit_breaker.h"
#include "shard/sharded_router.h"

namespace vqi {
namespace net {

namespace {

/// True when `value` is a number holding an exact integer in [lo, hi].
bool AsInt64(const JsonValue& value, int64_t lo, int64_t hi, int64_t* out) {
  if (!value.is_number()) return false;
  double number = value.number_value();
  if (std::floor(number) != number) return false;
  // double(INT64_MAX) rounds UP to 2^63, so a plain `> double(hi)` check
  // with hi == INT64_MAX admits 2^63 and the cast below would be UB on
  // untrusted input. Reject at the exact bound first (>= because 2^63 is
  // itself representable; every in-range double below it casts safely).
  if (number >= 9223372036854775808.0 /* 2^63 */) return false;
  if (number < static_cast<double>(lo) || number > static_cast<double>(hi)) {
    return false;
  }
  *out = static_cast<int64_t>(number);
  return true;
}

Status BadField(std::string_view key, std::string_view expectation) {
  return Status::InvalidArgument("field '" + std::string(key) + "' " +
                                 std::string(expectation));
}

/// Decodes {"vertices": [label...], "edges": [[u, v, label?]...]}.
Status PatternFromJson(const JsonValue& json, Graph* pattern) {
  if (!json.is_object()) return BadField("pattern", "must be an object");
  for (const auto& [key, value] : json.object_items()) {
    if (key != "vertices" && key != "edges") {
      return Status::InvalidArgument("unknown pattern field '" + key + "'");
    }
  }
  const JsonValue* vertices = json.Find("vertices");
  if (vertices == nullptr || !vertices->is_array() ||
      vertices->array().empty()) {
    return BadField("pattern.vertices",
                    "must be a non-empty array of vertex labels");
  }
  constexpr int64_t kMaxLabel = 0xFFFFFFFF;
  for (const JsonValue& label : vertices->array()) {
    int64_t value = 0;
    if (!AsInt64(label, 0, kMaxLabel, &value)) {
      return BadField("pattern.vertices", "entries must be integer labels");
    }
    pattern->AddVertex(static_cast<Label>(value));
  }
  const int64_t vertex_count = static_cast<int64_t>(pattern->NumVertices());
  const JsonValue* edges = json.Find("edges");
  if (edges != nullptr) {
    if (!edges->is_array()) {
      return BadField("pattern.edges", "must be an array of [u, v, label]");
    }
    for (const JsonValue& edge : edges->array()) {
      if (!edge.is_array() || edge.array().size() < 2 ||
          edge.array().size() > 3) {
        return BadField("pattern.edges",
                        "entries must be [u, v] or [u, v, label]");
      }
      int64_t u = 0;
      int64_t v = 0;
      int64_t label = 0;
      if (!AsInt64(edge.array()[0], 0, vertex_count - 1, &u) ||
          !AsInt64(edge.array()[1], 0, vertex_count - 1, &v)) {
        return BadField("pattern.edges",
                        "endpoints must index pattern.vertices");
      }
      if (edge.array().size() == 3 &&
          !AsInt64(edge.array()[2], 0, kMaxLabel, &label)) {
        return BadField("pattern.edges", "labels must be integers");
      }
      if (!pattern->AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                            static_cast<Label>(label))) {
        return BadField("pattern.edges",
                        "contains a self-loop or duplicate edge");
      }
    }
  }
  return Status::OK();
}

JsonValue SuggestionsJson(const QueryResult& result) {
  JsonValue suggestions = JsonValue::Array();
  for (const EdgeSuggestion& s : result.suggestions) {
    JsonValue entry = JsonValue::Object();
    entry.Set("from_label", JsonValue::Number(static_cast<double>(s.from_label)));
    entry.Set("edge_label", JsonValue::Number(static_cast<double>(s.edge_label)));
    entry.Set("to_label", JsonValue::Number(static_cast<double>(s.to_label)));
    entry.Set("support", JsonValue::Number(static_cast<double>(s.support)));
    suggestions.Append(entry);
  }
  return suggestions;
}

JsonValue MatchedGraphsJson(const QueryResult& result) {
  JsonValue matched = JsonValue::Array();
  for (GraphId id : result.matched_graphs) {
    matched.Append(JsonValue::Number(static_cast<double>(id)));
  }
  return matched;
}

}  // namespace

StatusOr<QueryRequest> QueryRequestFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  QueryRequest request;
  bool saw_pattern = false;
  for (const auto& [key, value] : json.object_items()) {
    if (key == "kind") {
      if (!value.is_string()) return BadField(key, "must be a string");
      const std::string& kind = value.string_value();
      if (kind == "match_count") {
        request.kind = QueryKind::kMatchCount;
      } else if (kind == "suggest") {
        request.kind = QueryKind::kSuggest;
      } else {
        return BadField(key, "must be \"match_count\" or \"suggest\"");
      }
    } else if (key == "pattern") {
      if (Status status = PatternFromJson(value, &request.pattern);
          !status.ok()) {
        return status;
      }
      saw_pattern = true;
    } else if (key == "target") {
      int64_t target = 0;
      if (!AsInt64(value, kAllGraphs, INT64_MAX, &target)) {
        return BadField(key, "must be a graph id (or -1 for all graphs)");
      }
      request.target = target;
    } else if (key == "targets") {
      if (!value.is_array()) return BadField(key, "must be an array of ids");
      for (const JsonValue& id : value.array()) {
        int64_t target = 0;
        if (!AsInt64(id, 0, INT64_MAX, &target)) {
          return BadField(key, "entries must be non-negative graph ids");
        }
        request.targets.push_back(target);
      }
    } else if (key == "deadline_ms") {
      if (!value.is_number() || value.number_value() < 0) {
        return BadField(key, "must be a non-negative number");
      }
      request.deadline_ms = value.number_value();
    } else if (key == "max_embeddings") {
      int64_t cap = 0;
      if (!AsInt64(value, 0, INT64_MAX, &cap)) {
        return BadField(key, "must be a non-negative integer");
      }
      request.max_embeddings = static_cast<uint64_t>(cap);
    } else if (key == "focus") {
      int64_t focus = 0;
      if (!AsInt64(value, 0, 0xFFFFFFFF, &focus)) {
        return BadField(key, "must be a vertex index");
      }
      request.focus = static_cast<VertexId>(focus);
    } else if (key == "top_k") {
      int64_t top_k = 0;
      if (!AsInt64(value, 1, 1 << 20, &top_k)) {
        return BadField(key, "must be a positive integer");
      }
      request.top_k = static_cast<size_t>(top_k);
    } else if (key == "priority") {
      if (!value.is_string()) return BadField(key, "must be a string");
      const std::string& priority = value.string_value();
      if (priority == "interactive") {
        request.priority = RequestPriority::kInteractive;
      } else if (priority == "normal") {
        request.priority = RequestPriority::kNormal;
      } else if (priority == "background") {
        request.priority = RequestPriority::kBackground;
      } else {
        return BadField(
            key, "must be \"interactive\", \"normal\", or \"background\"");
      }
    } else if (key == "allow_partial") {
      if (!value.is_bool()) return BadField(key, "must be a boolean");
      request.allow_partial = value.bool_value();
    } else {
      return Status::InvalidArgument("unknown request field '" + key + "'");
    }
  }
  if (!saw_pattern) {
    return Status::InvalidArgument("request is missing 'pattern'");
  }
  if (request.kind == QueryKind::kSuggest &&
      request.focus >= request.pattern.NumVertices()) {
    return BadField("focus", "must index a pattern vertex");
  }
  return request;
}

JsonValue QueryResultContentJson(const QueryResult& result) {
  JsonValue json = JsonValue::Object();
  json.Set("status", JsonValue::String(StatusCodeToString(result.status.code())));
  json.Set("embedding_count",
           JsonValue::Number(static_cast<double>(result.embedding_count)));
  json.Set("matched_graphs", MatchedGraphsJson(result));
  json.Set("suggestions", SuggestionsJson(result));
  json.Set("truncated", JsonValue::Bool(result.truncated));
  return json;
}

JsonValue QueryResultToJson(const QueryResult& result) {
  JsonValue json = QueryResultContentJson(result);
  if (!result.status.ok()) {
    JsonValue error = JsonValue::Object();
    error.Set("code", JsonValue::String(StatusCodeToString(result.status.code())));
    error.Set("message", JsonValue::String(result.status.message()));
    json.Set("error", std::move(error));
  }
  json.Set("from_cache", JsonValue::Bool(result.from_cache));
  json.Set("coalesced", JsonValue::Bool(result.coalesced));
  json.Set("latency_ms", JsonValue::Number(result.latency_ms));
  json.Set("match_steps",
           JsonValue::Number(static_cast<double>(result.match_steps)));
  return json;
}

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kCancelled:
      // nginx's "client closed request" convention; a cancelled hedge loser
      // normally never reaches the wire, but the mapping must exist.
      return 499;
    default:
      return 500;
  }
}

HttpResponse JsonErrorResponse(const Status& status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(StatusCodeToString(status.code())));
  error.Set("message", JsonValue::String(status.message()));
  JsonValue body = JsonValue::Object();
  body.Set("error", std::move(error));
  HttpResponse response;
  response.status = HttpStatusFor(status);
  response.body = body.Dump();
  return response;
}

QueryServing::QueryServing(QueryService* service, Options options)
    : service_(service), options_(options) {}

QueryServing::QueryServing(shard::ShardedRouter* router, Options options)
    : router_(router), options_(options) {
  // The router already wraps each shard in its own resilience client;
  // layering another client in front would double-count retries.
  options_.client = nullptr;
}

HttpResponse QueryServing::Handle(const HttpRequest& request) {
  const std::string path(request.path());
  if (path == "/metrics") {
    if (request.method != "GET") {
      return JsonErrorResponse(
          Status::InvalidArgument("/metrics only supports GET"));
    }
    return HandleMetrics();
  }
  if (path == "/healthz") {
    if (request.method != "GET") {
      return JsonErrorResponse(
          Status::InvalidArgument("/healthz only supports GET"));
    }
    return HandleHealthz();
  }
  if (path == "/query") {
    if (request.method != "POST") {
      HttpResponse response = JsonErrorResponse(
          Status::InvalidArgument("/query only supports POST"));
      response.status = 405;
      response.headers.emplace_back("Allow", "POST");
      return response;
    }
    return HandleQuery(request);
  }
  HttpResponse response =
      JsonErrorResponse(Status::NotFound("no such endpoint: " + path));
  return response;
}

HttpResponse QueryServing::HandleMetrics() {
  HttpResponse response;
  if (options_.metrics == nullptr) {
    return JsonErrorResponse(
        Status::FailedPrecondition("no metrics registry is wired"));
  }
  response.status = 200;
  response.content_type = "text/plain; version=0.0.4";
  response.body = obs::ToPrometheusText(*options_.metrics);
  return response;
}

HttpResponse QueryServing::HandleHealthz() {
  const bool draining = server_ != nullptr && server_->draining();
  const size_t depth =
      router_ != nullptr ? router_->QueueDepth() : service_->QueueDepth();
  const size_t capacity = router_ != nullptr ? router_->queue_capacity()
                                             : service_->queue_capacity();
  const size_t threads =
      router_ != nullptr ? router_->num_threads() : service_->num_threads();
  const bool degraded =
      capacity > 0 && static_cast<double>(depth) >=
                          options_.degraded_queue_fraction *
                              static_cast<double>(capacity);

  JsonValue json = JsonValue::Object();
  json.Set("status", JsonValue::String(draining    ? "draining"
                                       : degraded ? "degraded"
                                                  : "ok"));
  json.Set("queue_depth", JsonValue::Number(static_cast<double>(depth)));
  json.Set("queue_capacity", JsonValue::Number(static_cast<double>(capacity)));
  json.Set("threads", JsonValue::Number(static_cast<double>(threads)));
  ServiceStats stats = router_ != nullptr ? router_->AggregateSnapshot()
                                          : service_->Snapshot();
  json.Set("admitted", JsonValue::Number(static_cast<double>(stats.admitted)));
  json.Set("shed", JsonValue::Number(static_cast<double>(stats.shed)));
  if (server_ != nullptr) {
    json.Set("active_connections",
             JsonValue::Number(
                 static_cast<double>(server_->active_connections())));
  }
  if (router_ != nullptr) {
    // Fleet view: a single dark replica shows up as one "open" entry here
    // while the overall status stays "ok" — its siblings absorb the reads,
    // the collection keeps serving. Unreplicated fleets (R = 1) keep the
    // original flat shard_breakers array; replicated fleets nest one array
    // per shard so the entry at [shard][replica] is that replica's breaker.
    json.Set("shards",
             JsonValue::Number(static_cast<double>(router_->num_shards())));
    json.Set("replicas",
             JsonValue::Number(static_cast<double>(router_->num_replicas())));
    JsonValue breakers = JsonValue::Array();
    for (size_t i = 0; i < router_->num_shards(); ++i) {
      if (router_->num_replicas() == 1) {
        breakers.Append(JsonValue::String(resilience::BreakerStateName(
            router_->client(i).breaker_state())));
        continue;
      }
      JsonValue replica_breakers = JsonValue::Array();
      for (size_t r = 0; r < router_->num_replicas(); ++r) {
        replica_breakers.Append(JsonValue::String(resilience::BreakerStateName(
            router_->client(i, r).breaker_state())));
      }
      breakers.Append(std::move(replica_breakers));
    }
    json.Set("shard_breakers", std::move(breakers));
  } else if (options_.client != nullptr) {
    json.Set("breaker",
             JsonValue::String(resilience::BreakerStateName(
                 options_.client->breaker_state())));
  }
  HttpResponse response;
  // A draining server answers health checks (so orchestrators see the state
  // transition) but advertises itself unready.
  response.status = draining ? 503 : 200;
  response.body = json.Dump();
  return response;
}

HttpResponse QueryServing::HandleQuery(const HttpRequest& request) {
  StatusOr<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) {
    return JsonErrorResponse(
        Status::InvalidArgument("bad JSON body: " + parsed.status().message()));
  }
  StatusOr<QueryRequest> decoded = QueryRequestFromJson(parsed.value());
  if (!decoded.ok()) {
    return JsonErrorResponse(decoded.status());
  }
  QueryResult result =
      router_ != nullptr ? router_->Execute(std::move(decoded).value())
      : options_.client != nullptr
          ? options_.client->Execute(std::move(decoded).value())
          : service_->Execute(std::move(decoded).value());
  HttpResponse response;
  response.status = HttpStatusFor(result.status);
  response.body = QueryResultToJson(result).Dump();
  return response;
}

}  // namespace net
}  // namespace vqi
