#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/stopwatch.h"

namespace vqi {
namespace net {

HttpClient::HttpClient() : HttpClient(Options()) {}

HttpClient::HttpClient(Options options) : options_(options) {}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  parser_ = HttpResponseParser();
}

Status HttpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Unavailable("connect " + host + ":" +
                                        std::to_string(port) + ": " +
                                        std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

Status HttpClient::WriteAll(std::string_view data) {
  Stopwatch deadline;
  while (!data.empty()) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    if (deadline.ElapsedMillis() >= options_.io_timeout_ms) {
      return Status::Unavailable("send: write deadline exceeded");
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    ::poll(&pfd, 1, 10);
  }
  return Status::OK();
}

Status HttpClient::SendRaw(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  return WriteAll(data);
}

std::string HttpClient::ReadAvailable(double timeout_ms) {
  std::string out;
  if (fd_ < 0) return out;
  Stopwatch deadline;
  for (;;) {
    double remaining = timeout_ms - deadline.ElapsedMillis();
    if (remaining <= 0) return out;
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining) + 1);
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) continue;
      return out;
    }
    char buf[4096];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return out;  // peer closed or errored: done
    out.append(buf, static_cast<size_t>(n));
  }
}

StatusOr<HttpResponseParser::Response> HttpClient::Roundtrip(
    const std::string& method, const std::string& target,
    std::string_view body, const std::string& content_type) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string request;
  request.reserve(body.size() + 160);
  request += method;
  request += ' ';
  request += target;
  request += " HTTP/1.1\r\nHost: vqlib\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Type: ";
    request += content_type;
    request += "\r\nContent-Length: ";
    request += std::to_string(body.size());
    request += "\r\n";
  }
  request += "\r\n";
  request.append(body.data(), body.size());
  if (Status sent = WriteAll(request); !sent.ok()) {
    Close();
    return sent;
  }

  Stopwatch deadline;
  HttpResponseParser::State state = parser_.state();
  while (state == HttpResponseParser::State::kNeedMore) {
    double remaining = options_.io_timeout_ms - deadline.ElapsedMillis();
    if (remaining <= 0) {
      Close();
      return Status::Unavailable("response deadline exceeded");
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining) + 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::Unavailable(std::string("poll: ") +
                                 std::strerror(errno));
    }
    if (ready == 0) continue;
    char buf[4096];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return Status::Unavailable("connection closed before a full response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::Unavailable(std::string("recv: ") +
                                 std::strerror(errno));
    }
    state = parser_.Consume(std::string_view(buf, static_cast<size_t>(n)));
  }
  if (state == HttpResponseParser::State::kError) {
    Status status = Status::ParseError("bad response: " + parser_.error());
    Close();
    return status;
  }
  HttpResponseParser::Response response = parser_.response();
  // A server that announced Connection: close will not serve this socket
  // again; reflect that locally so the next Roundtrip fails fast.
  if (FindHeader(response.headers, "connection") == "close") {
    Close();
  } else {
    parser_.Reset();
  }
  return response;
}

}  // namespace net
}  // namespace vqi
