#include "net/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace vqi {
namespace net {
namespace {

constexpr size_t kMaxDepth = 64;
// Container caps, enforced while parsing. Objects are capped hard because
// duplicate-key detection (JsonValue::Set's linear scan) is quadratic in
// member count — without the cap a 1MB body of ~100k tiny keys costs
// billions of compares. Arrays append in O(1) but get a generous cap as the
// same CPU-hygiene posture; both are far above anything the query API emits.
constexpr size_t kMaxObjectMembers = 1024;
constexpr size_t kMaxArrayElements = 1 << 16;

}  // namespace

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::bool_value() const {
  VQI_CHECK(is_bool()) << "JsonValue is not a bool";
  return bool_;
}

double JsonValue::number_value() const {
  VQI_CHECK(is_number()) << "JsonValue is not a number";
  return number_;
}

const std::string& JsonValue::string_value() const {
  VQI_CHECK(is_string()) << "JsonValue is not a string";
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  VQI_CHECK(is_array()) << "JsonValue is not an array";
  return array_;
}

std::vector<JsonValue>& JsonValue::array() {
  VQI_CHECK(is_array()) << "JsonValue is not an array";
  return array_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  VQI_CHECK(is_object()) << "JsonValue is not an object";
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  VQI_CHECK(is_object()) << "JsonValue is not an object";
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

size_t JsonValue::object_size() const {
  VQI_CHECK(is_object()) << "JsonValue is not an object";
  return object_.size();
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::object_items()
    const {
  VQI_CHECK(is_object()) << "JsonValue is not an object";
  return object_;
}

void JsonValue::Append(JsonValue value) {
  VQI_CHECK(is_array()) << "JsonValue is not an array";
  array_.push_back(std::move(value));
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      // Integers (the common case on this API) print without a decimal
      // point so the output is byte-stable and curl-friendly.
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::fabs(number_) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        *out += buf;
      } else if (std::isfinite(number_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        *out += buf;
      } else {
        *out += "null";  // JSON has no Inf/NaN
      }
      return;
    }
    case Kind::kString:
      *out += JsonEscape(string_);
      return;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        *out += JsonEscape(object_[i].first);
        out->push_back(':');
        object_[i].second.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    VQI_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError("JSON: " + message + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        VQI_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view literal, JsonValue value,
                      JsonValue* out) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    *out = JsonValue::Number(value);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // Encode the code point as UTF-8. Surrogate pairs are not needed
          // by this API's data (label names are ASCII); a lone surrogate is
          // passed through as its 3-byte encoding.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    Consume('[');
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      if (out->array().size() >= kMaxArrayElements) {
        return Error("array has too many elements");
      }
      JsonValue element;
      VQI_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    Consume('{');
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      VQI_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      if (out->object_size() >= kMaxObjectMembers) {
        return Error("object has too many members");
      }
      JsonValue value;
      VQI_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace net
}  // namespace vqi
