#ifndef VQLIB_NET_HTTP_SERVER_H_
#define VQLIB_NET_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_set>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/http_message.h"
#include "net/http_parser.h"
#include "obs/metrics.h"
#include "service/resilience/fault_injector.h"
#include "service/thread_pool.h"

namespace vqi {
namespace net {

/// Sizing, deadline, and chaos knobs for an HttpServer.
struct HttpServerOptions {
  /// Address to bind. The default is loopback-only: exposing the service
  /// beyond the host is a deployment decision, not a library default.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Connection worker threads (each runs one connection at a time).
  size_t num_threads = 4;
  /// Accepted-but-unstarted connections held in the pool queue; beyond this
  /// the accept loop answers 503 and closes (admission control at the edge).
  size_t queue_capacity = 128;
  /// Per-request socket deadlines. The read clock starts at a request's
  /// first byte and is cumulative: a request that has not fully arrived
  /// read_timeout_ms later gets 408 and the connection closes — the
  /// slowloris bound (trickling bytes does not extend it). An idle
  /// keep-alive connection closes after read_timeout_ms of silence.
  /// write_timeout_ms bounds a peer that stops draining responses.
  double read_timeout_ms = 5000;
  double write_timeout_ms = 5000;
  /// Requests served over one connection before the server forces
  /// Connection: close (bounded keep-alive; rotation caps per-connection
  /// state lifetime).
  size_t max_keepalive_requests = 1000;
  /// At Shutdown, connections get this long to finish in-flight requests
  /// before their sockets are forcibly shut down.
  double drain_grace_ms = 2000;
  /// Request parsing limits (see HttpParserLimits).
  HttpParserLimits parser_limits;
  /// When set, the server registers its vqi_http_* instruments here and the
  /// connection pool reports as {pool="http"}. Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// Chaos hook: when set, the server consults the http_read fault point
  /// before reading each request. latency = a slowloris peer trickling bytes
  /// (the worker sleeps, holding its slot); drop = a torn read (connection
  /// closed with no response); error = a failed read (503, then close).
  /// Must outlive the server.
  resilience::FaultInjector* fault_injector = nullptr;
};

/// Minimal dependency-free HTTP/1.1 server: a blocking accept loop that
/// dispatches each connection onto a vqi::ThreadPool worker, which owns the
/// connection for its lifetime (read → parse → handle → write, keep-alive
/// loop). Production posture from day one: per-connection read/write
/// deadlines, request-size and header-count limits, bounded keep-alive,
/// edge admission control, graceful drain, and vqi_http_* metrics.
///
/// The handler runs on connection workers and must be thread-safe. Errors
/// the parser detects (malformed, oversized, torn input) never reach the
/// handler — the server answers 4xx/5xx itself.
///
/// Thread-safe. Start() may be called once; Shutdown() is idempotent and
/// also runs in the destructor.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept loop. kUnavailable when the bind
  /// or listen fails (e.g. port in use), kFailedPrecondition on reuse.
  Status Start();

  /// Graceful drain: stop accepting, let in-flight connections finish
  /// (responses during drain carry Connection: close), force-close laggards
  /// after drain_grace_ms, then join every worker. Idempotent.
  void Shutdown();

  /// The bound port (after a successful Start). With options.port == 0 this
  /// is the kernel-assigned ephemeral port.
  uint16_t port() const { return port_; }

  bool draining() const;
  size_t active_connections() const;
  uint64_t connections_accepted() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// One request→response turn. Returns false when the connection must
  /// close (error, torn read, timeout, keep-alive exhausted, drain).
  bool ServeOne(int fd, HttpRequestParser& parser, size_t served);
  bool WriteResponse(int fd, const HttpResponse& response, bool close);
  /// Sends everything or gives up at the write deadline / a socket error.
  bool WriteAll(int fd, std::string_view data);
  /// Waits up to `timeout_ms` for readability; 1 ready, 0 timeout,
  /// -1 socket error.
  int PollReadable(int fd, double timeout_ms);

  void RegisterConnection(int fd);
  void UnregisterConnection(int fd);

  HttpServerOptions options_;
  Handler handler_;
  ThreadPool pool_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable Mutex mutex_;
  bool started_ VQLIB_GUARDED_BY(mutex_) = false;
  bool draining_ VQLIB_GUARDED_BY(mutex_) = false;
  bool stopped_ VQLIB_GUARDED_BY(mutex_) = false;
  uint64_t accepted_ VQLIB_GUARDED_BY(mutex_) = 0;
  /// Sockets owned by live connection tasks. A task removes its fd here
  /// before closing it, so the drain path can safely ::shutdown() every
  /// member to unblock laggards without touching a reused descriptor.
  std::unordered_set<int> active_fds_ VQLIB_GUARDED_BY(mutex_);

  // Instrument handles resolved once in the constructor (null without a
  // registry).
  obs::Counter* connections_total_ = nullptr;
  obs::Counter* connections_rejected_total_ = nullptr;
  obs::Gauge* connections_active_ = nullptr;
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* responses_total_2xx_ = nullptr;
  obs::Counter* responses_total_4xx_ = nullptr;
  obs::Counter* responses_total_5xx_ = nullptr;
  obs::Counter* parse_errors_total_ = nullptr;
  obs::Counter* read_timeouts_total_ = nullptr;
  obs::Counter* torn_reads_total_ = nullptr;
  obs::Histogram* request_latency_ms_ = nullptr;
};

}  // namespace net
}  // namespace vqi

#endif  // VQLIB_NET_HTTP_SERVER_H_
