#ifndef VQLIB_NET_JSON_H_
#define VQLIB_NET_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vqi {
namespace net {

/// A parsed JSON value. Dependency-free by design: the wire layer needs only
/// the subset of JSON that the /query API speaks (objects, arrays, numbers,
/// strings, booleans, null), so this is a small recursive-descent parser and
/// writer, not a general-purpose JSON library.
///
/// Numbers are stored as double. Every integer the API carries (graph ids,
/// counts, label values) is far below 2^53, so the round trip is exact.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue String(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Accessors are checked contract violations on kind mismatch; callers
  /// test is_*() first (the request decoder turns mismatches into
  /// kInvalidArgument before ever calling these).
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& array() const;
  std::vector<JsonValue>& array();

  /// Object field access. Find returns null when absent; insertion order is
  /// preserved in Dump so responses are byte-stable.
  const JsonValue* Find(std::string_view key) const;
  void Set(std::string key, JsonValue value);
  size_t object_size() const;
  /// Key/value pairs in insertion order (strict decoders enumerate these to
  /// reject unknown keys).
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const;

  void Append(JsonValue value);

  /// Serializes compactly (no whitespace), escaping per RFC 8259. Key order
  /// is insertion order, so equal values dump to equal bytes.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document. The whole input must be consumed (trailing
/// whitespace allowed); nesting is capped at 64 levels so adversarial wire
/// input cannot overflow the stack.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Escapes `text` as a JSON string literal including the surrounding quotes.
std::string JsonEscape(std::string_view text);

}  // namespace net
}  // namespace vqi

#endif  // VQLIB_NET_JSON_H_
