#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace vqi {
namespace obs {

const char* InstrumentKindName(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter:
      return "counter";
    case InstrumentKind::kGauge:
      return "gauge";
    case InstrumentKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

namespace internal {

size_t StripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kNumStripes;
  return index;
}

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace internal

// ---------------------------------------------------------------------------
// HistogramSnapshot

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(count);
  double cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    double in_bucket = static_cast<double>(counts[b]);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      if (b == bounds.size()) return bounds.back();  // +Inf overflow bucket
      double lower = b == 0 ? 0.0 : bounds[b - 1];
      double upper = bounds[b];
      double fraction = (rank - cumulative) / in_bucket;
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  VQI_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    VQI_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
  size_t buckets = bounds_.size() + 1;  // + the implicit +Inf bucket
  // Pad each stripe's bucket block to a cache-line multiple so stripes of
  // concurrent writers don't share lines.
  constexpr size_t kPerLine = 64 / sizeof(std::atomic<uint64_t>);
  stride_ = (buckets + kPerLine - 1) / kPerLine * kPerLine;
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(
      stride_ * internal::kNumStripes);
  for (size_t i = 0; i < stride_ * internal::kNumStripes; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  for (auto& sum : sums_) sum.store(0, std::memory_order_relaxed);
}

size_t Histogram::BucketFor(double value) const {
  // First bound >= value; values above every bound land in the +Inf bucket.
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::Observe(double value) {
  size_t stripe = internal::StripeIndex();
  counts_[stripe * stride_ + BucketFor(value)].fetch_add(
      1, std::memory_order_relaxed);
  internal::AtomicAddDouble(sums_[stripe], value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (size_t stripe = 0; stripe < internal::kNumStripes; ++stripe) {
    for (size_t b = 0; b < snapshot.counts.size(); ++b) {
      snapshot.counts[b] +=
          counts_[stripe * stride_ + b].load(std::memory_order_relaxed);
    }
    snapshot.sum += sums_[stripe].load(std::memory_order_relaxed);
  }
  for (uint64_t c : snapshot.counts) snapshot.count += c;
  return snapshot;
}

uint64_t Histogram::Count() const { return Snapshot().count; }

double Histogram::Sum() const { return Snapshot().sum; }

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t count) {
  VQI_CHECK(start > 0 && factor > 1 && count > 0)
      << "ExponentialBounds needs start > 0, factor > 1, count > 0";
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  return {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,
          5.0,  10.0,  25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0};
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::Family& MetricsRegistry::FamilyFor(const std::string& name,
                                                    const std::string& help,
                                                    InstrumentKind kind) {
  for (auto& family : families_) {
    if (family->name == name) {
      VQI_CHECK(family->kind == kind)
          << "metric family '" << name << "' already registered as "
          << InstrumentKindName(family->kind) << ", requested as "
          << InstrumentKindName(kind);
      if (family->help.empty()) family->help = help;
      return *family;
    }
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->kind = kind;
  families_.push_back(std::move(family));
  return *families_.back();
}

MetricsRegistry::Series* MetricsRegistry::FindSeries(Family& family,
                                                     const Labels& labels) {
  for (auto& series : family.series) {
    if (series->labels == labels) return series.get();
  }
  return nullptr;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  MutexLock lock(&mutex_);
  Family& family = FamilyFor(name, help, InstrumentKind::kCounter);
  if (Series* series = FindSeries(family, labels)) return *series->counter;
  auto series = std::make_unique<Series>();
  series->labels = labels;
  series->counter = std::make_unique<Counter>();
  family.series.push_back(std::move(series));
  return *family.series.back()->counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  MutexLock lock(&mutex_);
  Family& family = FamilyFor(name, help, InstrumentKind::kGauge);
  if (Series* series = FindSeries(family, labels)) return *series->gauge;
  auto series = std::make_unique<Series>();
  series->labels = labels;
  series->gauge = std::make_unique<Gauge>();
  family.series.push_back(std::move(series));
  return *family.series.back()->gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         const Labels& labels) {
  MutexLock lock(&mutex_);
  Family& family = FamilyFor(name, help, InstrumentKind::kHistogram);
  if (Series* series = FindSeries(family, labels)) return *series->histogram;
  auto series = std::make_unique<Series>();
  series->labels = labels;
  series->histogram = std::make_unique<Histogram>(std::move(bounds));
  family.series.push_back(std::move(series));
  return *family.series.back()->histogram;
}

std::vector<FamilySnapshot> MetricsRegistry::Snapshot() const {
  MutexLock lock(&mutex_);
  std::vector<FamilySnapshot> snapshot;
  snapshot.reserve(families_.size());
  for (const auto& family : families_) {
    FamilySnapshot fs;
    fs.name = family->name;
    fs.help = family->help;
    fs.kind = family->kind;
    for (const auto& series : family->series) {
      SeriesSnapshot ss;
      ss.labels = series->labels;
      switch (family->kind) {
        case InstrumentKind::kCounter:
          ss.value = static_cast<double>(series->counter->Value());
          break;
        case InstrumentKind::kGauge:
          ss.value = series->gauge->Value();
          break;
        case InstrumentKind::kHistogram:
          ss.histogram = series->histogram->Snapshot();
          break;
      }
      fs.series.push_back(std::move(ss));
    }
    snapshot.push_back(std::move(fs));
  }
  return snapshot;
}

}  // namespace obs
}  // namespace vqi
