#ifndef VQLIB_OBS_TRACE_H_
#define VQLIB_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace vqi {
namespace obs {

/// One named stage of a request's lifecycle and how long it took.
struct TraceStage {
  std::string name;
  double ms = 0;
};

/// Per-request record of where time went: the stage breakdown
/// (admission → cache probe → queue wait → execution) plus the matcher work
/// the request actually performed. Built on one thread at a time as the
/// request moves through the service, then handed to a TraceRecorder.
struct RequestTrace {
  uint64_t id = 0;
  std::string kind;    ///< "match" or "suggest"
  std::string status;  ///< StatusCodeToString of the final status
  bool from_cache = false;
  double total_ms = 0;
  uint64_t match_steps = 0;   ///< VF2 recursion steps consumed
  uint32_t match_slices = 0;  ///< cooperative deadline slices run
  std::vector<TraceStage> stages;

  /// The duration of `name`, or 0 when the stage was never recorded.
  double StageMs(const std::string& name) const;
};

/// RAII stage timer: appends {stage, elapsed} to the trace when it goes out
/// of scope (or at an explicit Stop()). Not thread-safe — a span belongs to
/// the single thread currently driving its request.
class TraceSpan {
 public:
  TraceSpan(RequestTrace& trace, std::string stage)
      : trace_(&trace), stage_(std::move(stage)) {}
  ~TraceSpan() { Stop(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Records the stage now; later calls (and the destructor) are no-ops.
  void Stop() {
    if (trace_ == nullptr) return;
    trace_->stages.push_back({std::move(stage_), timer_.ElapsedMillis()});
    trace_ = nullptr;
  }

 private:
  RequestTrace* trace_;
  std::string stage_;
  Stopwatch timer_;
};

/// Bounded ring buffer of the most recent completed request traces. Keeping
/// only the tail bounds memory while still answering "why was this request
/// slow" for anything that just happened. Thread-safe.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity);

  /// Stores `trace`, overwriting the oldest retained trace when full. A
  /// zero-capacity recorder drops everything (tracing disabled).
  void Record(RequestTrace trace);

  /// Retained traces, oldest first.
  std::vector<RequestTrace> Recent() const;

  /// Total traces ever recorded (including overwritten ones).
  uint64_t total_recorded() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  std::vector<RequestTrace> ring_ VQLIB_GUARDED_BY(mutex_);
  /// Ring slot the next Record overwrites.
  size_t next_ VQLIB_GUARDED_BY(mutex_) = 0;
  uint64_t total_ VQLIB_GUARDED_BY(mutex_) = 0;
};

}  // namespace obs
}  // namespace vqi

#endif  // VQLIB_OBS_TRACE_H_
