#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace vqi {
namespace obs {
namespace {

// Prometheus/JSON-friendly number rendering: integers stay integral,
// everything else gets enough digits to round-trip typical latencies.
std::string FormatNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRId64,
                  static_cast<int64_t>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') escaped.push_back('\\');
    if (c == '\n') {
      escaped += "\\n";
      continue;
    }
    escaped.push_back(c);
  }
  return escaped;
}

// {shard="3"} — or "" for the unlabeled series. `extra` appends a final
// label (used for histogram le="...").
std::string RenderLabels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(key) + "\":\"" + JsonEscape(value) + '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const FamilySnapshot& family : registry.Snapshot()) {
    if (!family.help.empty()) {
      out += "# HELP " + family.name + ' ' + family.help + '\n';
    }
    out += "# TYPE " + family.name + ' ' + InstrumentKindName(family.kind);
    out += '\n';
    for (const SeriesSnapshot& series : family.series) {
      if (family.kind != InstrumentKind::kHistogram) {
        out += family.name + RenderLabels(series.labels) + ' ' +
               FormatNumber(series.value) + '\n';
        continue;
      }
      const HistogramSnapshot& h = series.histogram;
      uint64_t cumulative = 0;
      for (size_t b = 0; b < h.bounds.size(); ++b) {
        cumulative += h.counts[b];
        out += family.name + "_bucket" +
               RenderLabels(series.labels,
                            "le=\"" + FormatNumber(h.bounds[b]) + "\"") +
               ' ' + FormatNumber(static_cast<double>(cumulative)) + '\n';
      }
      out += family.name + "_bucket" +
             RenderLabels(series.labels, "le=\"+Inf\"") + ' ' +
             FormatNumber(static_cast<double>(h.count)) + '\n';
      out += family.name + "_sum" + RenderLabels(series.labels) + ' ' +
             FormatNumber(h.sum) + '\n';
      out += family.name + "_count" + RenderLabels(series.labels) + ' ' +
             FormatNumber(static_cast<double>(h.count)) + '\n';
    }
  }
  return out;
}

std::string ToJson(const MetricsRegistry& registry) {
  std::string out = "{\"families\":[";
  bool first_family = true;
  for (const FamilySnapshot& family : registry.Snapshot()) {
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":\"" + JsonEscape(family.name) + "\",\"type\":\"";
    out += InstrumentKindName(family.kind);
    out += "\",\"help\":\"" + JsonEscape(family.help) + "\",\"series\":[";
    bool first_series = true;
    for (const SeriesSnapshot& series : family.series) {
      if (!first_series) out += ',';
      first_series = false;
      out += "{\"labels\":" + JsonLabels(series.labels);
      if (family.kind != InstrumentKind::kHistogram) {
        out += ",\"value\":" + FormatNumber(series.value);
      } else {
        const HistogramSnapshot& h = series.histogram;
        out += ",\"count\":" + FormatNumber(static_cast<double>(h.count));
        out += ",\"sum\":" + FormatNumber(h.sum);
        out += ",\"p50\":" + FormatNumber(h.Quantile(0.5));
        out += ",\"p99\":" + FormatNumber(h.Quantile(0.99));
        out += ",\"bounds\":[";
        for (size_t b = 0; b < h.bounds.size(); ++b) {
          if (b > 0) out += ',';
          out += FormatNumber(h.bounds[b]);
        }
        out += "],\"counts\":[";
        for (size_t b = 0; b < h.counts.size(); ++b) {
          if (b > 0) out += ',';
          out += FormatNumber(static_cast<double>(h.counts[b]));
        }
        out += ']';
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string TracesToJson(const TraceRecorder& recorder) {
  std::string out = "[";
  bool first = true;
  for (const RequestTrace& trace : recorder.Recent()) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + FormatNumber(static_cast<double>(trace.id));
    out += ",\"kind\":\"" + JsonEscape(trace.kind) + '"';
    out += ",\"status\":\"" + JsonEscape(trace.status) + '"';
    out += ",\"from_cache\":";
    out += trace.from_cache ? "true" : "false";
    out += ",\"total_ms\":" + FormatNumber(trace.total_ms);
    out += ",\"match_steps\":" +
           FormatNumber(static_cast<double>(trace.match_steps));
    out += ",\"match_slices\":" +
           FormatNumber(static_cast<double>(trace.match_slices));
    out += ",\"stages\":{";
    bool first_stage = true;
    for (const TraceStage& stage : trace.stages) {
      if (!first_stage) out += ',';
      first_stage = false;
      out += '"' + JsonEscape(stage.name) + "\":" + FormatNumber(stage.ms);
    }
    out += "}}";
  }
  out += ']';
  return out;
}

std::string FormatTraceTable(const std::vector<RequestTrace>& traces) {
  std::string out =
      "    id  kind     status            cache  total ms  slices      steps  "
      "stage breakdown\n";
  for (const RequestTrace& trace : traces) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%6" PRIu64 "  %-7s  %-16s  %-5s  %8.3f  %6u  %9" PRIu64
                  "  ",
                  trace.id, trace.kind.c_str(), trace.status.c_str(),
                  trace.from_cache ? "hit" : "-", trace.total_ms,
                  trace.match_slices, trace.match_steps);
    out += line;
    bool first = true;
    for (const TraceStage& stage : trace.stages) {
      if (!first) out += ' ';
      first = false;
      char part[64];
      std::snprintf(part, sizeof(part), "%s=%.3f", stage.name.c_str(),
                    stage.ms);
      out += part;
    }
    out += '\n';
  }
  return out;
}

Status WritePrometheusFile(const MetricsRegistry& registry,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open metrics output " + path);
  out << ToPrometheusText(registry);
  if (!out) return Status::IoError("failed writing metrics output " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace vqi
