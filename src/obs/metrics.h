#ifndef VQLIB_OBS_METRICS_H_
#define VQLIB_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace vqi {
namespace obs {

/// A metric series' label set, e.g. {{"shard", "3"}}. Order is preserved in
/// exposition. An empty set is the unlabeled series of a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// Returns "counter", "gauge", or "histogram" (the Prometheus TYPE token).
const char* InstrumentKindName(InstrumentKind kind);

namespace internal {

/// Hot-path increments are spread over this many cache-line-padded stripes;
/// reads sum the stripes. Sized for small-machine worker pools.
inline constexpr size_t kNumStripes = 8;

/// Stable per-thread stripe assignment (round-robin at first use).
size_t StripeIndex();

/// fetch_add for doubles via a CAS loop (portable; no atomic<double>::fetch_add
/// dependence).
void AtomicAddDouble(std::atomic<double>& target, double delta);

struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// Monotonically increasing count. Increments go to a per-thread stripe so
/// concurrent hot paths don't contend on one cache line; Value() sums stripes
/// (exact once writers are quiescent, a consistent-enough snapshot otherwise).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    stripes_[internal::StripeIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  internal::PaddedU64 stripes_[internal::kNumStripes];
};

/// A value that can go up and down (queue depth, pool size).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { internal::AtomicAddDouble(value_, delta); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Point-in-time copy of a histogram's state. `counts[i]` is the number of
/// observations in bucket i (NOT cumulative); bucket i covers
/// (bounds[i-1], bounds[i]], and the final bucket (index bounds.size()) is
/// the +Inf overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;    ///< finite upper bounds, strictly increasing
  std::vector<uint64_t> counts;  ///< size bounds.size() + 1
  uint64_t count = 0;            ///< total observations
  double sum = 0;                ///< sum of observed values

  /// Estimates the q-quantile (q in [0,1]) by linear interpolation within the
  /// containing bucket, assuming non-negative observations (the library's
  /// histograms record latencies, steps, and slice counts). Observations in
  /// the +Inf bucket are attributed to the largest finite bound.
  double Quantile(double q) const;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// Fixed-bucket histogram. Observe() is lock-free: a binary search over the
/// bounds plus one relaxed fetch_add on a striped bucket counter.
class Histogram {
 public:
  /// `bounds` are the finite bucket upper bounds; must be non-empty and
  /// strictly increasing. An implicit +Inf bucket catches overflow.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  HistogramSnapshot Snapshot() const;
  /// Convenience for Snapshot().Quantile(q).
  double Quantile(double q) const { return Snapshot().Quantile(q); }

  const std::vector<double>& bounds() const { return bounds_; }

  /// `count` bounds starting at `start`, each `factor` times the previous.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t count);
  /// Default bounds for request/queue latencies in milliseconds:
  /// 0.01ms .. ~5s, roughly 2.5x apart.
  static std::vector<double> DefaultLatencyBoundsMs();

 private:
  size_t BucketFor(double value) const;

  std::vector<double> bounds_;
  size_t stride_;  ///< buckets per stripe, padded to a cache-line multiple
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<double> sums_[internal::kNumStripes];
};

/// One series (label set + current value) inside a family snapshot.
struct SeriesSnapshot {
  Labels labels;
  double value = 0;             ///< counter / gauge value
  HistogramSnapshot histogram;  ///< populated for histogram families only
};

/// All series of one named metric, e.g. vqi_cache_hits_total over its shards.
struct FamilySnapshot {
  std::string name;
  std::string help;
  InstrumentKind kind = InstrumentKind::kCounter;
  std::vector<SeriesSnapshot> series;
};

/// Owner and namespace of instruments. Get* calls find-or-create: the first
/// call for a (name, labels) pair creates the instrument, later calls return
/// the same one, so call sites don't need registration ceremony. Returned
/// references are stable for the registry's lifetime. Registering the same
/// family name with two different kinds is a checked contract violation.
///
/// Thread-safe. Lookup takes a registry-wide mutex, so hot paths should hold
/// on to the returned reference instead of re-resolving names per event.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const std::string& help = "",
                      const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const std::string& help = "",
                  const Labels& labels = {});
  /// `bounds` applies when the call creates the series; an existing series
  /// keeps its original buckets.
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const Labels& labels = {});

  /// Consistent-enough point-in-time copy of every family, in registration
  /// order (exporters consume this).
  std::vector<FamilySnapshot> Snapshot() const;

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    InstrumentKind kind;
    std::vector<std::unique_ptr<Series>> series;
  };

  Family& FamilyFor(const std::string& name, const std::string& help,
                    InstrumentKind kind) VQLIB_REQUIRES(mutex_);
  Series* FindSeries(Family& family, const Labels& labels)
      VQLIB_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_ VQLIB_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace vqi

#endif  // VQLIB_OBS_METRICS_H_
