#ifndef VQLIB_OBS_EXPORT_H_
#define VQLIB_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vqi {
namespace obs {

/// Renders every registered family in the Prometheus text exposition format
/// (# HELP / # TYPE headers, one line per series; histograms expand into
/// cumulative _bucket{le=...} series plus _sum and _count).
std::string ToPrometheusText(const MetricsRegistry& registry);

/// Renders the same snapshot as a JSON document:
/// {"families":[{"name":...,"type":...,"help":...,"series":[...]}]}.
std::string ToJson(const MetricsRegistry& registry);

/// Renders retained traces as a JSON array (stage breakdown per request).
std::string TracesToJson(const TraceRecorder& recorder);

/// Human-readable table of traces for CLI output, oldest first.
std::string FormatTraceTable(const std::vector<RequestTrace>& traces);

/// Writes ToPrometheusText(registry) to `path`.
Status WritePrometheusFile(const MetricsRegistry& registry,
                           const std::string& path);

}  // namespace obs
}  // namespace vqi

#endif  // VQLIB_OBS_EXPORT_H_
