#include "obs/trace.h"

#include <utility>

namespace vqi {
namespace obs {

double RequestTrace::StageMs(const std::string& name) const {
  for (const TraceStage& stage : stages) {
    if (stage.name == name) return stage.ms;
  }
  return 0.0;
}

TraceRecorder::TraceRecorder(size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void TraceRecorder::Record(RequestTrace trace) {
  if (capacity_ == 0) return;
  MutexLock lock(&mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
    return;
  }
  ring_[next_] = std::move(trace);
  next_ = (next_ + 1) % capacity_;
}

std::vector<RequestTrace> TraceRecorder::Recent() const {
  MutexLock lock(&mutex_);
  std::vector<RequestTrace> result;
  result.reserve(ring_.size());
  // Before the first wraparound next_ is 0 and the ring is already oldest
  // first; afterwards next_ points at the oldest retained trace.
  for (size_t i = 0; i < ring_.size(); ++i) {
    result.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return result;
}

uint64_t TraceRecorder::total_recorded() const {
  MutexLock lock(&mutex_);
  return total_;
}

}  // namespace obs
}  // namespace vqi
