#ifndef VQLIB_MINING_TREE_MINER_H_
#define VQLIB_MINING_TREE_MINER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"

namespace vqi {

/// A frequent subtree together with the ids of the data graphs containing it
/// (its support set). Support sets double as CATAPULT/MIDAS feature
/// dimensions: feature_vector(g)[i] = 1 iff trees[i] occurs in g.
struct FrequentTree {
  Graph tree;
  std::vector<GraphId> support;  // sorted ascending

  size_t support_count() const { return support.size(); }
};

/// Configuration for the level-wise frequent subtree miner.
struct TreeMinerConfig {
  /// A tree is frequent when contained in at least this many graphs.
  size_t min_support = 2;
  /// Maximum number of edges per mined tree (CATAPULT uses small subtrees as
  /// clustering features, so 2-3 edges is typical).
  size_t max_edges = 3;
  /// Safety cap on the number of frequent trees kept per level.
  size_t max_trees_per_level = 512;
};

/// Mines frequent subtrees of the database by level-wise pattern growth:
/// frequent single edges first, then every frequent tree extended by one
/// pendant edge drawn from the frequent-edge alphabet, deduplicated by
/// canonical code, support-counted by subgraph isomorphism against the
/// graphs in the parent's support set (anti-monotonicity).
std::vector<FrequentTree> MineFrequentTrees(const GraphDatabase& db,
                                            const TreeMinerConfig& config);

}  // namespace vqi

#endif  // VQLIB_MINING_TREE_MINER_H_
