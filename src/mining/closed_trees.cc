#include "mining/closed_trees.h"

#include <algorithm>
#include <unordered_set>

#include "match/vf2.h"

namespace vqi {

std::vector<FrequentTree> ClosedTrees(const std::vector<FrequentTree>& trees) {
  std::vector<FrequentTree> closed;
  for (size_t i = 0; i < trees.size(); ++i) {
    const FrequentTree& t = trees[i];
    bool is_closed = true;
    for (size_t j = 0; j < trees.size(); ++j) {
      if (i == j) continue;
      const FrequentTree& super = trees[j];
      if (super.tree.NumEdges() != t.tree.NumEdges() + 1) continue;
      if (super.support != t.support) continue;
      if (ContainsSubgraph(super.tree, t.tree)) {
        is_closed = false;
        break;
      }
    }
    if (is_closed) closed.push_back(t);
  }
  return closed;
}

std::vector<FrequentTree> MineClosedTrees(const GraphDatabase& db,
                                          const TreeMinerConfig& config) {
  return ClosedTrees(MineFrequentTrees(db, config));
}

std::vector<FrequentTree> MaintainClosedTrees(
    std::vector<FrequentTree> trees, const GraphDatabase& db,
    const BatchUpdate& update, const TreeMinerConfig& config) {
  std::unordered_set<GraphId> deleted(update.deletions.begin(),
                                      update.deletions.end());
  std::vector<FrequentTree> maintained;
  for (FrequentTree& t : trees) {
    // 1. Drop deleted ids.
    auto end = std::remove_if(
        t.support.begin(), t.support.end(),
        [&](GraphId id) { return deleted.count(id) > 0; });
    t.support.erase(end, t.support.end());
    // 2. Match against additions (only those actually in the db now).
    for (const Graph& added : update.additions) {
      if (!db.Contains(added.id())) continue;
      if (ContainsSubgraph(db.Get(added.id()), t.tree)) {
        t.support.push_back(added.id());
      }
    }
    std::sort(t.support.begin(), t.support.end());
    t.support.erase(std::unique(t.support.begin(), t.support.end()),
                    t.support.end());
    // 3. Frequency filter.
    if (t.support.size() >= config.min_support) {
      maintained.push_back(std::move(t));
    }
  }
  // 4. Re-check closedness on the maintained set.
  return ClosedTrees(maintained);
}

}  // namespace vqi
