#include "mining/random_walk.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "graph/graph_builder.h"

namespace vqi {

std::optional<Graph> WeightedRandomSubgraph(const Graph& g,
                                            const EdgeWeightFn& weight,
                                            size_t num_edges, Rng& rng) {
  if (num_edges == 0 || g.NumEdges() < num_edges) return std::nullopt;

  std::vector<Edge> all_edges = g.Edges();
  std::vector<double> weights(all_edges.size());
  for (size_t i = 0; i < all_edges.size(); ++i) {
    weights[i] = weight(all_edges[i].u, all_edges[i].v);
  }
  size_t seed_index = rng.WeightedIndex(weights);
  if (seed_index >= all_edges.size()) return std::nullopt;  // all-zero weights
  const Edge& seed = all_edges[seed_index];

  auto key = [](VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  };
  std::vector<Edge> chosen{seed};
  std::unordered_set<uint64_t> chosen_keys{key(seed.u, seed.v)};
  std::vector<VertexId> vertices{seed.u, seed.v};
  std::unordered_set<VertexId> vertex_set{seed.u, seed.v};

  while (chosen.size() < num_edges) {
    std::vector<Edge> frontier;
    std::vector<double> frontier_weights;
    for (VertexId v : vertices) {
      for (const Neighbor& nb : g.Neighbors(v)) {
        uint64_t k = key(v, nb.vertex);
        if (chosen_keys.count(k)) continue;
        double w = weight(v, nb.vertex);
        if (w <= 0.0) continue;
        frontier.push_back(Edge{std::min(v, nb.vertex),
                                std::max(v, nb.vertex), nb.edge_label});
        frontier_weights.push_back(w);
      }
    }
    if (frontier.empty()) return std::nullopt;
    size_t pick_index = rng.WeightedIndex(frontier_weights);
    if (pick_index >= frontier.size()) return std::nullopt;
    const Edge& pick = frontier[pick_index];
    if (!chosen_keys.insert(key(pick.u, pick.v)).second) continue;
    chosen.push_back(pick);
    for (VertexId v : {pick.u, pick.v}) {
      if (vertex_set.insert(v).second) vertices.push_back(v);
    }
  }
  return SubgraphFromEdges(g, chosen);
}

std::optional<Graph> UniformRandomSubgraph(const Graph& g, size_t num_edges,
                                           Rng& rng) {
  return WeightedRandomSubgraph(
      g, [](VertexId, VertexId) { return 1.0; }, num_edges, rng);
}

}  // namespace vqi
