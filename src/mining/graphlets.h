#ifndef VQLIB_MINING_GRAPHLETS_H_
#define VQLIB_MINING_GRAPHLETS_H_

#include <array>
#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "graph/graph_database.h"

namespace vqi {

/// The eight connected 3- and 4-vertex graphlet types (induced subgraphs),
/// the standard small-graphlet alphabet used by MIDAS's graphlet frequency
/// distribution.
enum GraphletType : int {
  kG3Path = 0,         // P3 (wedge)
  kG3Triangle = 1,     // K3
  kG4Path = 2,         // P4
  kG4Star = 3,         // K1,3 (claw)
  kG4Cycle = 4,        // C4
  kG4TailedTriangle = 5,
  kG4Diamond = 6,      // K4 minus an edge
  kG4Clique = 7,       // K4
  kNumGraphletTypes = 8,
};

/// Human-readable graphlet name ("P3", "C4", ...).
const char* GraphletTypeName(GraphletType type);

/// Exact counts of each connected induced 3-/4-vertex subgraph.
struct GraphletCounts {
  std::array<uint64_t, kNumGraphletTypes> counts = {};

  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t c : counts) sum += c;
    return sum;
  }
};

/// Normalized graphlet frequency distribution (sums to 1 unless the graph
/// has no 3-vertex connected subgraphs at all, in which case all-zero).
struct GraphletDistribution {
  std::array<double, kNumGraphletTypes> freq = {};

  /// Euclidean (L2) distance between two distributions; this is the drift
  /// signal MIDAS thresholds to classify batch updates as major or minor.
  double DistanceTo(const GraphletDistribution& other) const;

  std::string DebugString() const;
};

/// Exact graphlet counting via ESU (Wernicke) enumeration of connected
/// 3- and 4-vertex induced subgraphs. Intended for small/medium data graphs;
/// cost is proportional to the number of such subgraphs.
GraphletCounts CountGraphlets(const Graph& g);

/// Distribution of one graph.
GraphletDistribution GraphletsOf(const Graph& g);

/// Aggregate distribution of a database: counts are summed across graphs and
/// then normalized, so every embedded subgraph has equal influence.
GraphletDistribution GraphletsOfDatabase(const GraphDatabase& db);

}  // namespace vqi

#endif  // VQLIB_MINING_GRAPHLETS_H_
