#ifndef VQLIB_MINING_CLOSED_TREES_H_
#define VQLIB_MINING_CLOSED_TREES_H_

#include <vector>

#include "graph/graph_database.h"
#include "mining/tree_miner.h"

namespace vqi {

/// Filters a frequent-tree collection down to the *closed* trees: a tree is
/// closed when no frequent supertree (one more edge) has exactly the same
/// support set. MIDAS swaps CATAPULT's frequent-subtree features for
/// frequent closed trees (FCT) because the closure property makes them cheap
/// to maintain under batch updates.
std::vector<FrequentTree> ClosedTrees(const std::vector<FrequentTree>& trees);

/// Mines frequent closed trees directly from a database.
std::vector<FrequentTree> MineClosedTrees(const GraphDatabase& db,
                                          const TreeMinerConfig& config);

/// A batch update to a graph database: graphs to insert and ids to delete.
struct BatchUpdate {
  std::vector<Graph> additions;
  std::vector<GraphId> deletions;

  bool empty() const { return additions.empty() && deletions.empty(); }
};

/// Incrementally maintains an FCT collection after `update` was applied to
/// the database (`db` is the post-update state):
///  1. drops deleted graph ids from every support set,
///  2. matches every tree against the added graphs to extend supports,
///  3. drops trees that fell below min_support,
///  4. re-mines on a drift trigger is the caller's job (see midas/).
/// Returns the maintained collection (closedness re-checked).
std::vector<FrequentTree> MaintainClosedTrees(
    std::vector<FrequentTree> trees, const GraphDatabase& db,
    const BatchUpdate& update, const TreeMinerConfig& config);

}  // namespace vqi

#endif  // VQLIB_MINING_CLOSED_TREES_H_
