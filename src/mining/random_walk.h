#ifndef VQLIB_MINING_RANDOM_WALK_H_
#define VQLIB_MINING_RANDOM_WALK_H_

#include <functional>
#include <optional>

#include "common/rng.h"
#include "graph/graph.h"

namespace vqi {

/// Weight of edge {u, v}; must be >= 0. Cluster summary graphs weight edges
/// by how many member graphs contain them, which biases CATAPULT's walks
/// toward substructures shared across the cluster.
using EdgeWeightFn = std::function<double(VertexId, VertexId)>;

/// Samples a connected subgraph of `g` with exactly `num_edges` edges via a
/// weighted random expansion: the seed edge is drawn with probability
/// proportional to its weight, then frontier edges are repeatedly drawn the
/// same way. Returns nullopt when the walk gets stuck (component exhausted)
/// or the graph has too few edges.
std::optional<Graph> WeightedRandomSubgraph(const Graph& g,
                                            const EdgeWeightFn& weight,
                                            size_t num_edges, Rng& rng);

/// Unit-weight convenience overload.
std::optional<Graph> UniformRandomSubgraph(const Graph& g, size_t num_edges,
                                           Rng& rng);

}  // namespace vqi

#endif  // VQLIB_MINING_RANDOM_WALK_H_
