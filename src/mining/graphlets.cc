#include "mining/graphlets.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace vqi {

const char* GraphletTypeName(GraphletType type) {
  switch (type) {
    case kG3Path:
      return "P3";
    case kG3Triangle:
      return "K3";
    case kG4Path:
      return "P4";
    case kG4Star:
      return "claw";
    case kG4Cycle:
      return "C4";
    case kG4TailedTriangle:
      return "tailed-triangle";
    case kG4Diamond:
      return "diamond";
    case kG4Clique:
      return "K4";
    default:
      return "?";
  }
}

double GraphletDistribution::DistanceTo(
    const GraphletDistribution& other) const {
  double sum = 0.0;
  for (int i = 0; i < kNumGraphletTypes; ++i) {
    double d = freq[i] - other.freq[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

std::string GraphletDistribution::DebugString() const {
  std::ostringstream out;
  for (int i = 0; i < kNumGraphletTypes; ++i) {
    if (i > 0) out << " ";
    out << GraphletTypeName(static_cast<GraphletType>(i)) << "=" << freq[i];
  }
  return out.str();
}

namespace {

// Classifies an induced connected subgraph on 3 or 4 vertices.
GraphletType Classify(const Graph& g, const std::vector<VertexId>& vs) {
  size_t k = vs.size();
  size_t edges = 0;
  std::array<int, 4> deg = {0, 0, 0, 0};
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (g.HasEdge(vs[i], vs[j])) {
        ++edges;
        ++deg[i];
        ++deg[j];
      }
    }
  }
  if (k == 3) {
    return edges == 3 ? kG3Triangle : kG3Path;
  }
  int max_deg = *std::max_element(deg.begin(), deg.begin() + 4);
  switch (edges) {
    case 3:
      return max_deg == 3 ? kG4Star : kG4Path;
    case 4:
      return max_deg == 3 ? kG4TailedTriangle : kG4Cycle;
    case 5:
      return kG4Diamond;
    default:
      return kG4Clique;
  }
}

// ESU (Wernicke 2006): enumerates every connected induced k-vertex subgraph
// exactly once. `subgraph` holds chosen vertices; `extension` holds vertices
// that can legally extend it (id > root, exclusive neighbors only).
void ExtendSubgraph(const Graph& g, std::vector<VertexId>& subgraph,
                    std::vector<VertexId> extension, VertexId root, size_t k,
                    GraphletCounts& out) {
  if (subgraph.size() == k) {
    GraphletType t = Classify(g, subgraph);
    ++out.counts[t];
    return;
  }
  while (!extension.empty()) {
    VertexId w = extension.back();
    extension.pop_back();
    // New extension: remaining extension plus exclusive neighbors of w
    // (greater than root, not adjacent to or part of the current subgraph).
    std::vector<VertexId> next_extension = extension;
    for (const Neighbor& nb : g.Neighbors(w)) {
      VertexId u = nb.vertex;
      if (u <= root) continue;
      bool adjacent_to_subgraph = false;
      for (VertexId s : subgraph) {
        if (u == s || g.HasEdge(u, s)) {
          adjacent_to_subgraph = true;
          break;
        }
      }
      if (adjacent_to_subgraph) continue;
      if (std::find(next_extension.begin(), next_extension.end(), u) ==
          next_extension.end()) {
        next_extension.push_back(u);
      }
    }
    subgraph.push_back(w);
    ExtendSubgraph(g, subgraph, std::move(next_extension), root, k, out);
    subgraph.pop_back();
  }
}

void EnumerateSizeK(const Graph& g, size_t k, GraphletCounts& out) {
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::vector<VertexId> extension;
    for (const Neighbor& nb : g.Neighbors(v)) {
      if (nb.vertex > v) extension.push_back(nb.vertex);
    }
    std::vector<VertexId> subgraph{v};
    ExtendSubgraph(g, subgraph, std::move(extension), v, k, out);
  }
}

GraphletDistribution Normalize(const GraphletCounts& counts) {
  GraphletDistribution dist;
  uint64_t total = counts.total();
  if (total == 0) return dist;
  for (int i = 0; i < kNumGraphletTypes; ++i) {
    dist.freq[i] =
        static_cast<double>(counts.counts[i]) / static_cast<double>(total);
  }
  return dist;
}

}  // namespace

GraphletCounts CountGraphlets(const Graph& g) {
  GraphletCounts out;
  EnumerateSizeK(g, 3, out);
  EnumerateSizeK(g, 4, out);
  return out;
}

GraphletDistribution GraphletsOf(const Graph& g) {
  return Normalize(CountGraphlets(g));
}

GraphletDistribution GraphletsOfDatabase(const GraphDatabase& db) {
  GraphletCounts sum;
  for (const Graph& g : db.graphs()) {
    GraphletCounts c = CountGraphlets(g);
    for (int i = 0; i < kNumGraphletTypes; ++i) sum.counts[i] += c.counts[i];
  }
  return Normalize(sum);
}

}  // namespace vqi
