#include "mining/tree_miner.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_set>

#include "common/logging.h"
#include "match/canonical.h"
#include "match/vf2.h"

namespace vqi {
namespace {

// A labeled edge type: (smaller vertex label, edge label, larger vertex
// label). Single-edge trees are identified by this triple.
using EdgeType = std::tuple<Label, Label, Label>;

EdgeType MakeEdgeType(Label a, Label elabel, Label b) {
  if (a > b) std::swap(a, b);
  return {a, elabel, b};
}

Graph TreeFromEdgeType(const EdgeType& t) {
  Graph g;
  VertexId u = g.AddVertex(std::get<0>(t));
  VertexId v = g.AddVertex(std::get<2>(t));
  g.AddEdge(u, v, std::get<1>(t));
  return g;
}

}  // namespace

std::vector<FrequentTree> MineFrequentTrees(const GraphDatabase& db,
                                            const TreeMinerConfig& config) {
  VQI_CHECK_GE(config.max_edges, 1u);
  std::vector<FrequentTree> result;

  // Level 1: frequent edge types, counted directly.
  std::map<EdgeType, std::vector<GraphId>> edge_support;
  for (const Graph& g : db.graphs()) {
    std::unordered_set<uint64_t> seen;  // dedup edge types within one graph
    std::vector<EdgeType> local;
    for (const Edge& e : g.Edges()) {
      local.push_back(MakeEdgeType(g.VertexLabel(e.u), e.label,
                                   g.VertexLabel(e.v)));
    }
    std::sort(local.begin(), local.end());
    local.erase(std::unique(local.begin(), local.end()), local.end());
    for (const EdgeType& t : local) edge_support[t].push_back(g.id());
  }

  std::vector<FrequentTree> level;
  std::vector<EdgeType> frequent_edge_types;
  for (auto& [type, support] : edge_support) {
    if (support.size() < config.min_support) continue;
    std::sort(support.begin(), support.end());
    frequent_edge_types.push_back(type);
    level.push_back(FrequentTree{TreeFromEdgeType(type), support});
  }
  for (const FrequentTree& t : level) result.push_back(t);

  // Levels 2..max_edges: pendant-edge growth.
  for (size_t edges = 2; edges <= config.max_edges && !level.empty();
       ++edges) {
    std::vector<FrequentTree> next;
    std::unordered_set<std::string> seen_codes;
    for (const FrequentTree& parent : level) {
      for (VertexId attach = 0; attach < parent.tree.NumVertices();
           ++attach) {
        Label attach_label = parent.tree.VertexLabel(attach);
        for (const EdgeType& type : frequent_edge_types) {
          // The new pendant edge must have `attach`'s label at one end.
          auto [la, el, lb] = type;
          std::vector<Label> other_ends;
          if (la == attach_label) other_ends.push_back(lb);
          if (lb == attach_label && lb != la) other_ends.push_back(la);
          for (Label other : other_ends) {
            Graph candidate = parent.tree;
            VertexId leaf = candidate.AddVertex(other);
            candidate.AddEdge(attach, leaf, el);
            std::string code = CanonicalCode(candidate);
            if (!seen_codes.insert(code).second) continue;
            // Support counting restricted to the parent's support set.
            std::vector<GraphId> support;
            for (GraphId gid : parent.support) {
              if (ContainsSubgraph(db.Get(gid), candidate)) {
                support.push_back(gid);
              }
            }
            if (support.size() >= config.min_support) {
              next.push_back(FrequentTree{std::move(candidate),
                                          std::move(support)});
              if (next.size() >= config.max_trees_per_level) break;
            }
          }
          if (next.size() >= config.max_trees_per_level) break;
        }
        if (next.size() >= config.max_trees_per_level) break;
      }
      if (next.size() >= config.max_trees_per_level) break;
    }
    for (const FrequentTree& t : next) result.push_back(t);
    level = std::move(next);
  }
  return result;
}

}  // namespace vqi
