#ifndef VQLIB_MIDAS_DRIFT_H_
#define VQLIB_MIDAS_DRIFT_H_

#include "mining/graphlets.h"

namespace vqi {

/// MIDAS's batch-update triage: a batch is a *major* modification when the
/// database's graphlet frequency distribution moved far enough (Euclidean
/// distance above threshold) that the canned patterns may have gone stale;
/// otherwise it is *minor* and only clusters/CSGs are refreshed.
enum class ModificationType { kMinor, kMajor };

const char* ModificationTypeName(ModificationType type);

struct DriftResult {
  double distance = 0.0;
  ModificationType type = ModificationType::kMinor;
};

/// Compares pre-/post-update distributions against `threshold`.
DriftResult ClassifyDrift(const GraphletDistribution& before,
                          const GraphletDistribution& after,
                          double threshold);

}  // namespace vqi

#endif  // VQLIB_MIDAS_DRIFT_H_
