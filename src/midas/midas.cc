#include "midas/midas.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "cluster/similarity.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "metrics/coverage.h"
#include "metrics/diversity.h"

namespace vqi {

StatusOr<MidasState> InitializeMidas(const GraphDatabase& db,
                                     const MidasConfig& config) {
  CatapultConfig base = config.base;
  base.use_closed_trees = true;
  StatusOr<CatapultResult> result = RunCatapult(db, base);
  if (!result.ok()) return result.status();
  MidasState state;
  state.catapult = std::move(result->state);
  return state;
}

namespace {

// Rebuilds the CSG of cluster `c` from its current member ids.
void RebuildCsg(CatapultState& state, const GraphDatabase& db, size_t c) {
  std::vector<const Graph*> members;
  for (GraphId id : state.cluster_members[c]) {
    if (db.Contains(id)) members.push_back(&db.Get(id));
  }
  state.csgs[c] = ClusterSummaryGraph::Build(members);
}

}  // namespace

StatusOr<MaintenanceReport> ApplyBatchAndMaintain(MidasState& state,
                                                  GraphDatabase& db,
                                                  BatchUpdate update,
                                                  const MidasConfig& config) {
  MaintenanceReport report;
  Stopwatch watch;
  CatapultState& cat = state.catapult;
  if (cat.cluster_members.empty()) {
    return Status::FailedPrecondition("MIDAS state is uninitialized");
  }

  // --- Apply the batch to the database, recording concrete ids. ----------
  std::unordered_set<GraphId> deleted;
  for (GraphId id : update.deletions) {
    if (db.Remove(id)) deleted.insert(id);
  }
  std::vector<GraphId> added_ids;
  for (Graph& g : update.additions) {
    added_ids.push_back(db.Add(std::move(g)));
  }
  // Normalize the update descriptor for FCT maintenance.
  BatchUpdate applied;
  applied.deletions.assign(deleted.begin(), deleted.end());
  for (GraphId id : added_ids) applied.additions.push_back(db.Get(id));

  // --- 1. Cluster bookkeeping. --------------------------------------------
  std::unordered_set<size_t> touched;
  for (size_t c = 0; c < cat.cluster_members.size(); ++c) {
    auto& members = cat.cluster_members[c];
    size_t before = members.size();
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&](GraphId id) { return deleted.count(id); }),
                  members.end());
    if (members.size() != before) touched.insert(c);
  }
  for (GraphId id : added_ids) {
    FeatureVector f = TreeFeatureOf(db.Get(id), cat.feature_basis);
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < cat.medoid_features.size(); ++c) {
      if (cat.medoid_features[c].size() != f.size()) continue;
      double d = Distance(f, cat.medoid_features[c], cat.config.metric);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    cat.cluster_members[best].push_back(id);
    touched.insert(best);
  }
  report.clusters_touched = touched.size();

  // --- 2. FCT maintenance. -------------------------------------------------
  cat.feature_basis = MaintainClosedTrees(std::move(cat.feature_basis), db,
                                          applied, cat.config.tree_config);

  // --- 3. Drift classification. --------------------------------------------
  GraphletDistribution gfd_after = GraphletsOfDatabase(db);
  report.drift = ClassifyDrift(cat.gfd, gfd_after, config.drift_threshold);
  cat.gfd = gfd_after;

  // --- 4. CSG refresh (both paths) and, on major drift, pattern swaps. -----
  for (size_t c : touched) RebuildCsg(cat, db, c);

  // Score the existing patterns against the updated database either way, so
  // the report shows quality before/after.
  std::vector<ScoredCandidate> current =
      ScoreCandidates(db, cat.patterns, cat.config.load_model);
  {
    PatternSetEvaluator eval(db.size(), cat.config.weights);
    for (const auto& c : current) eval.Add(c);
    report.score_before = eval.CurrentScore();
    report.coverage_before = eval.coverage_fraction();
  }
  report.score_after = report.score_before;
  report.coverage_after = report.coverage_before;

  if (report.drift.type == ModificationType::kMajor && !current.empty()) {
    // Candidates from the touched clusters' summary graphs.
    Rng rng(cat.config.seed ^ 0x0001DA5ull);
    std::vector<ClusterSummaryGraph> touched_csgs;
    for (size_t c : touched) touched_csgs.push_back(cat.csgs[c]);
    CandidateGenConfig gen;
    gen.min_edges = cat.config.min_pattern_edges;
    gen.max_edges = cat.config.max_pattern_edges;
    gen.walks = cat.config.walks_per_csg;
    std::vector<Graph> raw = GenerateCandidates(touched_csgs, gen, rng);
    report.candidates_generated = raw.size();
    std::vector<ScoredCandidate> candidates =
        ScoreCandidates(db, std::move(raw), cat.config.load_model);

    SwapConfig swap;
    swap.max_scans = config.max_scans;
    swap.weights = cat.config.weights;
    report.swap = MultiScanSwap(current, candidates, db.size(), swap);
    if (report.swap.swaps_applied > 0) {
      report.patterns_updated = true;
      cat.patterns.clear();
      for (const ScoredCandidate& c : current) cat.patterns.push_back(c.pattern);
    }
    PatternSetEvaluator eval(db.size(), cat.config.weights);
    for (const auto& c : current) eval.Add(c);
    report.score_after = eval.CurrentScore();
    report.coverage_after = eval.coverage_fraction();
  }

  report.seconds = watch.ElapsedSeconds();
  return report;
}

}  // namespace vqi
