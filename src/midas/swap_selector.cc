#include "midas/swap_selector.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace vqi {

namespace {

// Scores a pattern set given as ScoredCandidates.
double ScoreSet(const std::vector<ScoredCandidate>& set, size_t universe,
                const ScoreWeights& weights) {
  PatternSetEvaluator evaluator(universe, weights);
  for (const ScoredCandidate& c : set) evaluator.Add(c);
  return evaluator.CurrentScore();
}

}  // namespace

SwapReport MultiScanSwap(std::vector<ScoredCandidate>& current,
                         const std::vector<ScoredCandidate>& candidates,
                         size_t universe_size, const SwapConfig& config) {
  SwapReport report;
  report.score_before = ScoreSet(current, universe_size, config.weights);
  report.score_after = report.score_before;
  if (current.empty() || candidates.empty()) return report;

  // Index 2: candidates in decreasing coverage-count order.
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return candidates[a].coverage.Count() > candidates[b].coverage.Count();
  });

  for (size_t scan = 0; scan < config.max_scans; ++scan) {
    ++report.scans;
    bool improved_this_scan = false;

    // Index 1: union coverage and each pattern's exclusive contribution.
    size_t k = current.size();
    Bitset all(universe_size);
    for (const ScoredCandidate& c : current) all.UnionWith(c.coverage);
    size_t all_count = all.Count();
    // cov_without[i] = union of every pattern except i (prefix/suffix trick).
    std::vector<Bitset> prefix(k + 1, Bitset(universe_size));
    std::vector<Bitset> suffix(k + 1, Bitset(universe_size));
    for (size_t i = 0; i < k; ++i) {
      prefix[i + 1] = prefix[i];
      prefix[i + 1].UnionWith(current[i].coverage);
    }
    for (size_t i = k; i > 0; --i) {
      suffix[i - 1] = suffix[i];
      suffix[i - 1].UnionWith(current[i - 1].coverage);
    }
    size_t min_unique = std::numeric_limits<size_t>::max();
    std::vector<Bitset> without(k, Bitset(universe_size));
    for (size_t i = 0; i < k; ++i) {
      without[i] = prefix[i];
      without[i].UnionWith(suffix[i + 1]);
      min_unique = std::min(min_unique, all_count - without[i].Count());
    }

    double current_score = report.score_after;
    for (size_t cand_pos : order) {
      const ScoredCandidate& cand = candidates[cand_pos];
      // Coverage-based pruning: no new bits and too small to replace even
      // the least-unique pattern -> every swap would shrink coverage.
      size_t new_bits = all.NewBits(cand.coverage);
      if (new_bits == 0 && cand.coverage.Count() < min_unique) {
        ++report.candidates_pruned;
        continue;
      }
      // Try the best position to swap into.
      double best_score = current_score;
      int best_i = -1;
      for (size_t i = 0; i < k; ++i) {
        // Progressive coverage: the swapped set must cover at least as much.
        size_t cov_after = without[i].UnionCount(cand.coverage);
        if (cov_after < all_count) continue;
        ScoredCandidate saved = current[i];
        current[i] = cand;
        double score = ScoreSet(current, universe_size, config.weights);
        current[i] = std::move(saved);
        if (score > best_score + config.epsilon) {
          best_score = score;
          best_i = static_cast<int>(i);
        }
      }
      if (best_i >= 0) {
        current[static_cast<size_t>(best_i)] = cand;
        current_score = best_score;
        ++report.swaps_applied;
        improved_this_scan = true;
        // Refresh index 1 for subsequent candidates in this scan.
        all = Bitset(universe_size);
        for (const ScoredCandidate& c : current) all.UnionWith(c.coverage);
        all_count = all.Count();
        for (size_t i = 0; i < k; ++i) {
          prefix[i + 1] = prefix[i];
          prefix[i + 1].UnionWith(current[i].coverage);
        }
        for (size_t i = k; i > 0; --i) {
          suffix[i - 1] = suffix[i];
          suffix[i - 1].UnionWith(current[i - 1].coverage);
        }
        min_unique = std::numeric_limits<size_t>::max();
        for (size_t i = 0; i < k; ++i) {
          without[i] = prefix[i];
          without[i].UnionWith(suffix[i + 1]);
          min_unique = std::min(min_unique, all_count - without[i].Count());
        }
      }
    }
    report.score_after = current_score;
    if (!improved_this_scan) break;
  }
  VQI_CHECK_GE(report.score_after, report.score_before - 1e-9);
  return report;
}

}  // namespace vqi
