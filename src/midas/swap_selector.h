#ifndef VQLIB_MIDAS_SWAP_SELECTOR_H_
#define VQLIB_MIDAS_SWAP_SELECTOR_H_

#include <cstddef>
#include <vector>

#include "metrics/pattern_score.h"

namespace vqi {

/// Configuration of MIDAS's multi-scan swapping strategy.
struct SwapConfig {
  /// Maximum number of full passes over the candidate list.
  size_t max_scans = 3;
  ScoreWeights weights;
  /// Minimum score improvement to accept a swap.
  double epsilon = 1e-9;
};

/// Outcome statistics of a swap run.
struct SwapReport {
  size_t swaps_applied = 0;
  size_t candidates_pruned = 0;
  size_t scans = 0;
  double score_before = 0.0;
  double score_after = 0.0;
};

/// Improves `current` in place by swapping members against `candidates`.
///
/// Invariants enforced per accepted swap (the paper's guarantee that the
/// updated set is "at least the same or better"):
///  * total coverage does not decrease (progressive gain of coverage), and
///  * the combined score strictly improves.
///
/// Coverage-based pruning (with its two supporting indices): candidates are
/// scanned in decreasing coverage order (index 2); a candidate that brings
/// no new coverage AND covers fewer elements than the smallest unique
/// contribution of any current pattern (index 1: per-pattern exclusive
/// coverage) cannot preserve coverage in any swap and is skipped outright.
SwapReport MultiScanSwap(std::vector<ScoredCandidate>& current,
                         const std::vector<ScoredCandidate>& candidates,
                         size_t universe_size, const SwapConfig& config);

}  // namespace vqi

#endif  // VQLIB_MIDAS_SWAP_SELECTOR_H_
