#ifndef VQLIB_MIDAS_MIDAS_H_
#define VQLIB_MIDAS_MIDAS_H_

#include <vector>

#include "catapult/catapult.h"
#include "common/status.h"
#include "midas/drift.h"
#include "midas/swap_selector.h"
#include "mining/closed_trees.h"

namespace vqi {

/// Configuration of MIDAS (Huang et al., SIGMOD'21): efficient maintenance
/// of a CATAPULT-built canned-pattern set under batch updates.
struct MidasConfig {
  /// Base CATAPULT configuration. Initialization forces use_closed_trees on
  /// (MIDAS replaces frequent subtrees with frequent closed trees because
  /// the closure property makes incremental maintenance cheap).
  CatapultConfig base;
  /// Graphlet-frequency L2 distance beyond which a batch counts as a major
  /// modification (patterns may be stale; run the swap phase).
  double drift_threshold = 0.02;
  /// Multi-scan swapping passes.
  size_t max_scans = 3;
};

/// Persistent maintenance state (the CATAPULT state carries everything).
struct MidasState {
  CatapultState catapult;

  const std::vector<Graph>& patterns() const { return catapult.patterns; }
};

/// Builds the initial pattern set with CATAPULT (FCT features) and packages
/// the retained state.
StatusOr<MidasState> InitializeMidas(const GraphDatabase& db,
                                     const MidasConfig& config);

/// What one maintenance round did and what it cost.
struct MaintenanceReport {
  DriftResult drift;
  bool patterns_updated = false;
  SwapReport swap;
  size_t clusters_touched = 0;
  size_t candidates_generated = 0;
  double seconds = 0.0;
  /// Pattern-set score on the *updated* database before/after maintenance.
  double score_before = 0.0;
  double score_after = 0.0;
  /// Database coverage fraction before/after.
  double coverage_before = 0.0;
  double coverage_after = 0.0;
};

/// Applies `update` to `db` (insertions get fresh ids unless pre-set) and
/// maintains the state:
///  1. assign added graphs to nearest clusters / drop deleted ones,
///  2. maintain the frequent-closed-tree feature basis,
///  3. classify the drift of the graphlet frequency distribution,
///  4. minor: refresh touched CSGs only;
///     major: regenerate candidates from touched CSGs and run the
///     multi-scan swap (monotone in both coverage and combined score).
StatusOr<MaintenanceReport> ApplyBatchAndMaintain(MidasState& state,
                                                  GraphDatabase& db,
                                                  BatchUpdate update,
                                                  const MidasConfig& config);

}  // namespace vqi

#endif  // VQLIB_MIDAS_MIDAS_H_
