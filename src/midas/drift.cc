#include "midas/drift.h"

namespace vqi {

const char* ModificationTypeName(ModificationType type) {
  return type == ModificationType::kMajor ? "major" : "minor";
}

DriftResult ClassifyDrift(const GraphletDistribution& before,
                          const GraphletDistribution& after,
                          double threshold) {
  DriftResult result;
  result.distance = before.DistanceTo(after);
  result.type = result.distance > threshold ? ModificationType::kMajor
                                            : ModificationType::kMinor;
  return result;
}

}  // namespace vqi
