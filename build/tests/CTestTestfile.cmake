# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/match_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/truss_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/catapult_test[1]_include.cmake")
include("/root/repo/build/tests/tattoo_test[1]_include.cmake")
include("/root/repo/build/tests/midas_test[1]_include.cmake")
include("/root/repo/build/tests/modular_test[1]_include.cmake")
include("/root/repo/build/tests/vqi_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/summary_test[1]_include.cmake")
include("/root/repo/build/tests/tsquery_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_search_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/suggestion_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/explorer_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/network_maintenance_test[1]_include.cmake")
