# Empty dependencies file for vqi_test.
# This may be replaced when dependencies are built.
