file(REMOVE_RECURSE
  "CMakeFiles/vqi_test.dir/vqi_test.cc.o"
  "CMakeFiles/vqi_test.dir/vqi_test.cc.o.d"
  "vqi_test"
  "vqi_test.pdb"
  "vqi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
