# Empty compiler generated dependencies file for midas_test.
# This may be replaced when dependencies are built.
