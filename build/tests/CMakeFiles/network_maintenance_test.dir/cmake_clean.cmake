file(REMOVE_RECURSE
  "CMakeFiles/network_maintenance_test.dir/network_maintenance_test.cc.o"
  "CMakeFiles/network_maintenance_test.dir/network_maintenance_test.cc.o.d"
  "network_maintenance_test"
  "network_maintenance_test.pdb"
  "network_maintenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
