# Empty compiler generated dependencies file for network_maintenance_test.
# This may be replaced when dependencies are built.
