file(REMOVE_RECURSE
  "CMakeFiles/similarity_search_test.dir/similarity_search_test.cc.o"
  "CMakeFiles/similarity_search_test.dir/similarity_search_test.cc.o.d"
  "similarity_search_test"
  "similarity_search_test.pdb"
  "similarity_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
