# Empty dependencies file for similarity_search_test.
# This may be replaced when dependencies are built.
