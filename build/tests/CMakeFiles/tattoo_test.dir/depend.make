# Empty dependencies file for tattoo_test.
# This may be replaced when dependencies are built.
