file(REMOVE_RECURSE
  "CMakeFiles/tattoo_test.dir/tattoo_test.cc.o"
  "CMakeFiles/tattoo_test.dir/tattoo_test.cc.o.d"
  "tattoo_test"
  "tattoo_test.pdb"
  "tattoo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tattoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
