file(REMOVE_RECURSE
  "CMakeFiles/suggestion_test.dir/suggestion_test.cc.o"
  "CMakeFiles/suggestion_test.dir/suggestion_test.cc.o.d"
  "suggestion_test"
  "suggestion_test.pdb"
  "suggestion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suggestion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
