# Empty dependencies file for suggestion_test.
# This may be replaced when dependencies are built.
