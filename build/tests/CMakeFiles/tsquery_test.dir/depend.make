# Empty dependencies file for tsquery_test.
# This may be replaced when dependencies are built.
