file(REMOVE_RECURSE
  "CMakeFiles/tsquery_test.dir/tsquery_test.cc.o"
  "CMakeFiles/tsquery_test.dir/tsquery_test.cc.o.d"
  "tsquery_test"
  "tsquery_test.pdb"
  "tsquery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsquery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
