# Empty dependencies file for catapult_test.
# This may be replaced when dependencies are built.
