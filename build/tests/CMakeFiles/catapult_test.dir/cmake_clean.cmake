file(REMOVE_RECURSE
  "CMakeFiles/catapult_test.dir/catapult_test.cc.o"
  "CMakeFiles/catapult_test.dir/catapult_test.cc.o.d"
  "catapult_test"
  "catapult_test.pdb"
  "catapult_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catapult_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
