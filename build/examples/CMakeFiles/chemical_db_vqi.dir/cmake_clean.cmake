file(REMOVE_RECURSE
  "CMakeFiles/chemical_db_vqi.dir/chemical_db_vqi.cpp.o"
  "CMakeFiles/chemical_db_vqi.dir/chemical_db_vqi.cpp.o.d"
  "chemical_db_vqi"
  "chemical_db_vqi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chemical_db_vqi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
