# Empty compiler generated dependencies file for chemical_db_vqi.
# This may be replaced when dependencies are built.
