# Empty dependencies file for modular_pipeline_demo.
# This may be replaced when dependencies are built.
