file(REMOVE_RECURSE
  "CMakeFiles/modular_pipeline_demo.dir/modular_pipeline_demo.cpp.o"
  "CMakeFiles/modular_pipeline_demo.dir/modular_pipeline_demo.cpp.o.d"
  "modular_pipeline_demo"
  "modular_pipeline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modular_pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
