file(REMOVE_RECURSE
  "CMakeFiles/social_network_vqi.dir/social_network_vqi.cpp.o"
  "CMakeFiles/social_network_vqi.dir/social_network_vqi.cpp.o.d"
  "social_network_vqi"
  "social_network_vqi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network_vqi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
