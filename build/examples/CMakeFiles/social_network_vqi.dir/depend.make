# Empty dependencies file for social_network_vqi.
# This may be replaced when dependencies are built.
