# Empty compiler generated dependencies file for future_directions.
# This may be replaced when dependencies are built.
