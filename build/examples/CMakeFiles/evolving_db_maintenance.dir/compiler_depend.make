# Empty compiler generated dependencies file for evolving_db_maintenance.
# This may be replaced when dependencies are built.
