file(REMOVE_RECURSE
  "CMakeFiles/evolving_db_maintenance.dir/evolving_db_maintenance.cpp.o"
  "CMakeFiles/evolving_db_maintenance.dir/evolving_db_maintenance.cpp.o.d"
  "evolving_db_maintenance"
  "evolving_db_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolving_db_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
