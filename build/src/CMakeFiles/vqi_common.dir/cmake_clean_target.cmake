file(REMOVE_RECURSE
  "libvqi_common.a"
)
