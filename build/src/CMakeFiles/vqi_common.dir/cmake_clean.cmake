file(REMOVE_RECURSE
  "CMakeFiles/vqi_common.dir/common/logging.cc.o"
  "CMakeFiles/vqi_common.dir/common/logging.cc.o.d"
  "CMakeFiles/vqi_common.dir/common/rng.cc.o"
  "CMakeFiles/vqi_common.dir/common/rng.cc.o.d"
  "CMakeFiles/vqi_common.dir/common/status.cc.o"
  "CMakeFiles/vqi_common.dir/common/status.cc.o.d"
  "CMakeFiles/vqi_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/vqi_common.dir/common/stopwatch.cc.o.d"
  "CMakeFiles/vqi_common.dir/common/strings.cc.o"
  "CMakeFiles/vqi_common.dir/common/strings.cc.o.d"
  "libvqi_common.a"
  "libvqi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
