# Empty compiler generated dependencies file for vqi_common.
# This may be replaced when dependencies are built.
