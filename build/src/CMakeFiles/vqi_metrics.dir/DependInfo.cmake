
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/cognitive_load.cc" "src/CMakeFiles/vqi_metrics.dir/metrics/cognitive_load.cc.o" "gcc" "src/CMakeFiles/vqi_metrics.dir/metrics/cognitive_load.cc.o.d"
  "/root/repo/src/metrics/coverage.cc" "src/CMakeFiles/vqi_metrics.dir/metrics/coverage.cc.o" "gcc" "src/CMakeFiles/vqi_metrics.dir/metrics/coverage.cc.o.d"
  "/root/repo/src/metrics/diversity.cc" "src/CMakeFiles/vqi_metrics.dir/metrics/diversity.cc.o" "gcc" "src/CMakeFiles/vqi_metrics.dir/metrics/diversity.cc.o.d"
  "/root/repo/src/metrics/log_utility.cc" "src/CMakeFiles/vqi_metrics.dir/metrics/log_utility.cc.o" "gcc" "src/CMakeFiles/vqi_metrics.dir/metrics/log_utility.cc.o.d"
  "/root/repo/src/metrics/pattern_score.cc" "src/CMakeFiles/vqi_metrics.dir/metrics/pattern_score.cc.o" "gcc" "src/CMakeFiles/vqi_metrics.dir/metrics/pattern_score.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vqi_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
