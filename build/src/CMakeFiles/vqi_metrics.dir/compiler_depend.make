# Empty compiler generated dependencies file for vqi_metrics.
# This may be replaced when dependencies are built.
