file(REMOVE_RECURSE
  "libvqi_metrics.a"
)
