file(REMOVE_RECURSE
  "CMakeFiles/vqi_metrics.dir/metrics/cognitive_load.cc.o"
  "CMakeFiles/vqi_metrics.dir/metrics/cognitive_load.cc.o.d"
  "CMakeFiles/vqi_metrics.dir/metrics/coverage.cc.o"
  "CMakeFiles/vqi_metrics.dir/metrics/coverage.cc.o.d"
  "CMakeFiles/vqi_metrics.dir/metrics/diversity.cc.o"
  "CMakeFiles/vqi_metrics.dir/metrics/diversity.cc.o.d"
  "CMakeFiles/vqi_metrics.dir/metrics/log_utility.cc.o"
  "CMakeFiles/vqi_metrics.dir/metrics/log_utility.cc.o.d"
  "CMakeFiles/vqi_metrics.dir/metrics/pattern_score.cc.o"
  "CMakeFiles/vqi_metrics.dir/metrics/pattern_score.cc.o.d"
  "libvqi_metrics.a"
  "libvqi_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
