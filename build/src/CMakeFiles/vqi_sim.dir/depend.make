# Empty dependencies file for vqi_sim.
# This may be replaced when dependencies are built.
