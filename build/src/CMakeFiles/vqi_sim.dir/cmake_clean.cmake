file(REMOVE_RECURSE
  "CMakeFiles/vqi_sim.dir/sim/formulation.cc.o"
  "CMakeFiles/vqi_sim.dir/sim/formulation.cc.o.d"
  "CMakeFiles/vqi_sim.dir/sim/klm.cc.o"
  "CMakeFiles/vqi_sim.dir/sim/klm.cc.o.d"
  "CMakeFiles/vqi_sim.dir/sim/usability.cc.o"
  "CMakeFiles/vqi_sim.dir/sim/usability.cc.o.d"
  "CMakeFiles/vqi_sim.dir/sim/workload.cc.o"
  "CMakeFiles/vqi_sim.dir/sim/workload.cc.o.d"
  "libvqi_sim.a"
  "libvqi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
