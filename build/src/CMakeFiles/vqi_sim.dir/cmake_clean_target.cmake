file(REMOVE_RECURSE
  "libvqi_sim.a"
)
