file(REMOVE_RECURSE
  "CMakeFiles/vqi_summary.dir/summary/summarizer.cc.o"
  "CMakeFiles/vqi_summary.dir/summary/summarizer.cc.o.d"
  "libvqi_summary.a"
  "libvqi_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
