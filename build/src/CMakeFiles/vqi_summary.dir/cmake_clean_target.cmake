file(REMOVE_RECURSE
  "libvqi_summary.a"
)
