# Empty dependencies file for vqi_summary.
# This may be replaced when dependencies are built.
