# Empty compiler generated dependencies file for vqi_catapult.
# This may be replaced when dependencies are built.
