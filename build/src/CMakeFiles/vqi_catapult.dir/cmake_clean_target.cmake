file(REMOVE_RECURSE
  "libvqi_catapult.a"
)
