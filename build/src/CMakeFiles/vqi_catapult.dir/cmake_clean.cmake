file(REMOVE_RECURSE
  "CMakeFiles/vqi_catapult.dir/catapult/candidate_generator.cc.o"
  "CMakeFiles/vqi_catapult.dir/catapult/candidate_generator.cc.o.d"
  "CMakeFiles/vqi_catapult.dir/catapult/catapult.cc.o"
  "CMakeFiles/vqi_catapult.dir/catapult/catapult.cc.o.d"
  "libvqi_catapult.a"
  "libvqi_catapult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_catapult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
