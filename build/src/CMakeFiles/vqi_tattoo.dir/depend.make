# Empty dependencies file for vqi_tattoo.
# This may be replaced when dependencies are built.
