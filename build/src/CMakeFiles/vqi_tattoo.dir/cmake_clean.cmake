file(REMOVE_RECURSE
  "CMakeFiles/vqi_tattoo.dir/tattoo/distributed.cc.o"
  "CMakeFiles/vqi_tattoo.dir/tattoo/distributed.cc.o.d"
  "CMakeFiles/vqi_tattoo.dir/tattoo/network_maintenance.cc.o"
  "CMakeFiles/vqi_tattoo.dir/tattoo/network_maintenance.cc.o.d"
  "CMakeFiles/vqi_tattoo.dir/tattoo/tattoo.cc.o"
  "CMakeFiles/vqi_tattoo.dir/tattoo/tattoo.cc.o.d"
  "CMakeFiles/vqi_tattoo.dir/tattoo/topology_candidates.cc.o"
  "CMakeFiles/vqi_tattoo.dir/tattoo/topology_candidates.cc.o.d"
  "libvqi_tattoo.a"
  "libvqi_tattoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_tattoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
