file(REMOVE_RECURSE
  "libvqi_tattoo.a"
)
