file(REMOVE_RECURSE
  "libvqi_midas.a"
)
