# Empty dependencies file for vqi_midas.
# This may be replaced when dependencies are built.
