file(REMOVE_RECURSE
  "CMakeFiles/vqi_midas.dir/midas/drift.cc.o"
  "CMakeFiles/vqi_midas.dir/midas/drift.cc.o.d"
  "CMakeFiles/vqi_midas.dir/midas/midas.cc.o"
  "CMakeFiles/vqi_midas.dir/midas/midas.cc.o.d"
  "CMakeFiles/vqi_midas.dir/midas/swap_selector.cc.o"
  "CMakeFiles/vqi_midas.dir/midas/swap_selector.cc.o.d"
  "libvqi_midas.a"
  "libvqi_midas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_midas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
