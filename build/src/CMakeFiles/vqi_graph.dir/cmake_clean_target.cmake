file(REMOVE_RECURSE
  "libvqi_graph.a"
)
