file(REMOVE_RECURSE
  "CMakeFiles/vqi_graph.dir/graph/generators.cc.o"
  "CMakeFiles/vqi_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/vqi_graph.dir/graph/graph.cc.o"
  "CMakeFiles/vqi_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/vqi_graph.dir/graph/graph_algos.cc.o"
  "CMakeFiles/vqi_graph.dir/graph/graph_algos.cc.o.d"
  "CMakeFiles/vqi_graph.dir/graph/graph_builder.cc.o"
  "CMakeFiles/vqi_graph.dir/graph/graph_builder.cc.o.d"
  "CMakeFiles/vqi_graph.dir/graph/graph_database.cc.o"
  "CMakeFiles/vqi_graph.dir/graph/graph_database.cc.o.d"
  "CMakeFiles/vqi_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/vqi_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/vqi_graph.dir/graph/partition.cc.o"
  "CMakeFiles/vqi_graph.dir/graph/partition.cc.o.d"
  "libvqi_graph.a"
  "libvqi_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
