# Empty compiler generated dependencies file for vqi_graph.
# This may be replaced when dependencies are built.
