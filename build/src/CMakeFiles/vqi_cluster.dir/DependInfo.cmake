
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/agglomerative.cc" "src/CMakeFiles/vqi_cluster.dir/cluster/agglomerative.cc.o" "gcc" "src/CMakeFiles/vqi_cluster.dir/cluster/agglomerative.cc.o.d"
  "/root/repo/src/cluster/closure.cc" "src/CMakeFiles/vqi_cluster.dir/cluster/closure.cc.o" "gcc" "src/CMakeFiles/vqi_cluster.dir/cluster/closure.cc.o.d"
  "/root/repo/src/cluster/csg.cc" "src/CMakeFiles/vqi_cluster.dir/cluster/csg.cc.o" "gcc" "src/CMakeFiles/vqi_cluster.dir/cluster/csg.cc.o.d"
  "/root/repo/src/cluster/features.cc" "src/CMakeFiles/vqi_cluster.dir/cluster/features.cc.o" "gcc" "src/CMakeFiles/vqi_cluster.dir/cluster/features.cc.o.d"
  "/root/repo/src/cluster/kmedoids.cc" "src/CMakeFiles/vqi_cluster.dir/cluster/kmedoids.cc.o" "gcc" "src/CMakeFiles/vqi_cluster.dir/cluster/kmedoids.cc.o.d"
  "/root/repo/src/cluster/similarity.cc" "src/CMakeFiles/vqi_cluster.dir/cluster/similarity.cc.o" "gcc" "src/CMakeFiles/vqi_cluster.dir/cluster/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vqi_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
