# Empty compiler generated dependencies file for vqi_cluster.
# This may be replaced when dependencies are built.
