file(REMOVE_RECURSE
  "libvqi_cluster.a"
)
