file(REMOVE_RECURSE
  "CMakeFiles/vqi_cluster.dir/cluster/agglomerative.cc.o"
  "CMakeFiles/vqi_cluster.dir/cluster/agglomerative.cc.o.d"
  "CMakeFiles/vqi_cluster.dir/cluster/closure.cc.o"
  "CMakeFiles/vqi_cluster.dir/cluster/closure.cc.o.d"
  "CMakeFiles/vqi_cluster.dir/cluster/csg.cc.o"
  "CMakeFiles/vqi_cluster.dir/cluster/csg.cc.o.d"
  "CMakeFiles/vqi_cluster.dir/cluster/features.cc.o"
  "CMakeFiles/vqi_cluster.dir/cluster/features.cc.o.d"
  "CMakeFiles/vqi_cluster.dir/cluster/kmedoids.cc.o"
  "CMakeFiles/vqi_cluster.dir/cluster/kmedoids.cc.o.d"
  "CMakeFiles/vqi_cluster.dir/cluster/similarity.cc.o"
  "CMakeFiles/vqi_cluster.dir/cluster/similarity.cc.o.d"
  "libvqi_cluster.a"
  "libvqi_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
