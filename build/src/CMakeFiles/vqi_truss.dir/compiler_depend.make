# Empty compiler generated dependencies file for vqi_truss.
# This may be replaced when dependencies are built.
