file(REMOVE_RECURSE
  "libvqi_truss.a"
)
