file(REMOVE_RECURSE
  "CMakeFiles/vqi_truss.dir/truss/truss.cc.o"
  "CMakeFiles/vqi_truss.dir/truss/truss.cc.o.d"
  "libvqi_truss.a"
  "libvqi_truss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_truss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
