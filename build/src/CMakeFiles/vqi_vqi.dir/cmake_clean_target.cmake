file(REMOVE_RECURSE
  "libvqi_vqi.a"
)
