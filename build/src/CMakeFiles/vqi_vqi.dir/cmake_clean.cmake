file(REMOVE_RECURSE
  "CMakeFiles/vqi_vqi.dir/vqi/builder.cc.o"
  "CMakeFiles/vqi_vqi.dir/vqi/builder.cc.o.d"
  "CMakeFiles/vqi_vqi.dir/vqi/explorer.cc.o"
  "CMakeFiles/vqi_vqi.dir/vqi/explorer.cc.o.d"
  "CMakeFiles/vqi_vqi.dir/vqi/interface.cc.o"
  "CMakeFiles/vqi_vqi.dir/vqi/interface.cc.o.d"
  "CMakeFiles/vqi_vqi.dir/vqi/maintainer.cc.o"
  "CMakeFiles/vqi_vqi.dir/vqi/maintainer.cc.o.d"
  "CMakeFiles/vqi_vqi.dir/vqi/panels.cc.o"
  "CMakeFiles/vqi_vqi.dir/vqi/panels.cc.o.d"
  "CMakeFiles/vqi_vqi.dir/vqi/serialize.cc.o"
  "CMakeFiles/vqi_vqi.dir/vqi/serialize.cc.o.d"
  "CMakeFiles/vqi_vqi.dir/vqi/session.cc.o"
  "CMakeFiles/vqi_vqi.dir/vqi/session.cc.o.d"
  "CMakeFiles/vqi_vqi.dir/vqi/suggestion.cc.o"
  "CMakeFiles/vqi_vqi.dir/vqi/suggestion.cc.o.d"
  "libvqi_vqi.a"
  "libvqi_vqi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_vqi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
