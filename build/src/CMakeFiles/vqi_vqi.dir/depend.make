# Empty dependencies file for vqi_vqi.
# This may be replaced when dependencies are built.
