
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vqi/builder.cc" "src/CMakeFiles/vqi_vqi.dir/vqi/builder.cc.o" "gcc" "src/CMakeFiles/vqi_vqi.dir/vqi/builder.cc.o.d"
  "/root/repo/src/vqi/explorer.cc" "src/CMakeFiles/vqi_vqi.dir/vqi/explorer.cc.o" "gcc" "src/CMakeFiles/vqi_vqi.dir/vqi/explorer.cc.o.d"
  "/root/repo/src/vqi/interface.cc" "src/CMakeFiles/vqi_vqi.dir/vqi/interface.cc.o" "gcc" "src/CMakeFiles/vqi_vqi.dir/vqi/interface.cc.o.d"
  "/root/repo/src/vqi/maintainer.cc" "src/CMakeFiles/vqi_vqi.dir/vqi/maintainer.cc.o" "gcc" "src/CMakeFiles/vqi_vqi.dir/vqi/maintainer.cc.o.d"
  "/root/repo/src/vqi/panels.cc" "src/CMakeFiles/vqi_vqi.dir/vqi/panels.cc.o" "gcc" "src/CMakeFiles/vqi_vqi.dir/vqi/panels.cc.o.d"
  "/root/repo/src/vqi/serialize.cc" "src/CMakeFiles/vqi_vqi.dir/vqi/serialize.cc.o" "gcc" "src/CMakeFiles/vqi_vqi.dir/vqi/serialize.cc.o.d"
  "/root/repo/src/vqi/session.cc" "src/CMakeFiles/vqi_vqi.dir/vqi/session.cc.o" "gcc" "src/CMakeFiles/vqi_vqi.dir/vqi/session.cc.o.d"
  "/root/repo/src/vqi/suggestion.cc" "src/CMakeFiles/vqi_vqi.dir/vqi/suggestion.cc.o" "gcc" "src/CMakeFiles/vqi_vqi.dir/vqi/suggestion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vqi_catapult.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_tattoo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_midas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_truss.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
