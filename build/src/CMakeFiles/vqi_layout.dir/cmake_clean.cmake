file(REMOVE_RECURSE
  "CMakeFiles/vqi_layout.dir/layout/aesthetics.cc.o"
  "CMakeFiles/vqi_layout.dir/layout/aesthetics.cc.o.d"
  "CMakeFiles/vqi_layout.dir/layout/dot_export.cc.o"
  "CMakeFiles/vqi_layout.dir/layout/dot_export.cc.o.d"
  "CMakeFiles/vqi_layout.dir/layout/force_layout.cc.o"
  "CMakeFiles/vqi_layout.dir/layout/force_layout.cc.o.d"
  "CMakeFiles/vqi_layout.dir/layout/optimize.cc.o"
  "CMakeFiles/vqi_layout.dir/layout/optimize.cc.o.d"
  "libvqi_layout.a"
  "libvqi_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
