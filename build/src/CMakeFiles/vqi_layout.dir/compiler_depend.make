# Empty compiler generated dependencies file for vqi_layout.
# This may be replaced when dependencies are built.
