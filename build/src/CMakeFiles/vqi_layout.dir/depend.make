# Empty dependencies file for vqi_layout.
# This may be replaced when dependencies are built.
