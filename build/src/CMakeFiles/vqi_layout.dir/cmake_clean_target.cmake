file(REMOVE_RECURSE
  "libvqi_layout.a"
)
