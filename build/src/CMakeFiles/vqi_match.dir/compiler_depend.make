# Empty compiler generated dependencies file for vqi_match.
# This may be replaced when dependencies are built.
