file(REMOVE_RECURSE
  "libvqi_match.a"
)
