file(REMOVE_RECURSE
  "CMakeFiles/vqi_match.dir/match/canonical.cc.o"
  "CMakeFiles/vqi_match.dir/match/canonical.cc.o.d"
  "CMakeFiles/vqi_match.dir/match/pattern_utils.cc.o"
  "CMakeFiles/vqi_match.dir/match/pattern_utils.cc.o.d"
  "CMakeFiles/vqi_match.dir/match/similarity_search.cc.o"
  "CMakeFiles/vqi_match.dir/match/similarity_search.cc.o.d"
  "CMakeFiles/vqi_match.dir/match/vf2.cc.o"
  "CMakeFiles/vqi_match.dir/match/vf2.cc.o.d"
  "libvqi_match.a"
  "libvqi_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
