
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsquery/series.cc" "src/CMakeFiles/vqi_tsquery.dir/tsquery/series.cc.o" "gcc" "src/CMakeFiles/vqi_tsquery.dir/tsquery/series.cc.o.d"
  "/root/repo/src/tsquery/sketch_formulation.cc" "src/CMakeFiles/vqi_tsquery.dir/tsquery/sketch_formulation.cc.o" "gcc" "src/CMakeFiles/vqi_tsquery.dir/tsquery/sketch_formulation.cc.o.d"
  "/root/repo/src/tsquery/sketch_select.cc" "src/CMakeFiles/vqi_tsquery.dir/tsquery/sketch_select.cc.o" "gcc" "src/CMakeFiles/vqi_tsquery.dir/tsquery/sketch_select.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vqi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
