# Empty dependencies file for vqi_tsquery.
# This may be replaced when dependencies are built.
