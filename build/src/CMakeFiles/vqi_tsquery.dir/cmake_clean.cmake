file(REMOVE_RECURSE
  "CMakeFiles/vqi_tsquery.dir/tsquery/series.cc.o"
  "CMakeFiles/vqi_tsquery.dir/tsquery/series.cc.o.d"
  "CMakeFiles/vqi_tsquery.dir/tsquery/sketch_formulation.cc.o"
  "CMakeFiles/vqi_tsquery.dir/tsquery/sketch_formulation.cc.o.d"
  "CMakeFiles/vqi_tsquery.dir/tsquery/sketch_select.cc.o"
  "CMakeFiles/vqi_tsquery.dir/tsquery/sketch_select.cc.o.d"
  "libvqi_tsquery.a"
  "libvqi_tsquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_tsquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
