file(REMOVE_RECURSE
  "libvqi_tsquery.a"
)
