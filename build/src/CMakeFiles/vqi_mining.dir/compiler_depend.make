# Empty compiler generated dependencies file for vqi_mining.
# This may be replaced when dependencies are built.
