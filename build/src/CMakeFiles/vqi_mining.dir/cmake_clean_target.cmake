file(REMOVE_RECURSE
  "libvqi_mining.a"
)
