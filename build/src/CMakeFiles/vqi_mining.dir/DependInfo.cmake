
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/closed_trees.cc" "src/CMakeFiles/vqi_mining.dir/mining/closed_trees.cc.o" "gcc" "src/CMakeFiles/vqi_mining.dir/mining/closed_trees.cc.o.d"
  "/root/repo/src/mining/graphlets.cc" "src/CMakeFiles/vqi_mining.dir/mining/graphlets.cc.o" "gcc" "src/CMakeFiles/vqi_mining.dir/mining/graphlets.cc.o.d"
  "/root/repo/src/mining/random_walk.cc" "src/CMakeFiles/vqi_mining.dir/mining/random_walk.cc.o" "gcc" "src/CMakeFiles/vqi_mining.dir/mining/random_walk.cc.o.d"
  "/root/repo/src/mining/tree_miner.cc" "src/CMakeFiles/vqi_mining.dir/mining/tree_miner.cc.o" "gcc" "src/CMakeFiles/vqi_mining.dir/mining/tree_miner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vqi_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vqi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
