file(REMOVE_RECURSE
  "CMakeFiles/vqi_mining.dir/mining/closed_trees.cc.o"
  "CMakeFiles/vqi_mining.dir/mining/closed_trees.cc.o.d"
  "CMakeFiles/vqi_mining.dir/mining/graphlets.cc.o"
  "CMakeFiles/vqi_mining.dir/mining/graphlets.cc.o.d"
  "CMakeFiles/vqi_mining.dir/mining/random_walk.cc.o"
  "CMakeFiles/vqi_mining.dir/mining/random_walk.cc.o.d"
  "CMakeFiles/vqi_mining.dir/mining/tree_miner.cc.o"
  "CMakeFiles/vqi_mining.dir/mining/tree_miner.cc.o.d"
  "libvqi_mining.a"
  "libvqi_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
