file(REMOVE_RECURSE
  "CMakeFiles/vqi_modular.dir/modular/pipeline.cc.o"
  "CMakeFiles/vqi_modular.dir/modular/pipeline.cc.o.d"
  "CMakeFiles/vqi_modular.dir/modular/strategies.cc.o"
  "CMakeFiles/vqi_modular.dir/modular/strategies.cc.o.d"
  "libvqi_modular.a"
  "libvqi_modular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_modular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
