file(REMOVE_RECURSE
  "libvqi_modular.a"
)
