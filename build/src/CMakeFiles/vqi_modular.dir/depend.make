# Empty dependencies file for vqi_modular.
# This may be replaced when dependencies are built.
