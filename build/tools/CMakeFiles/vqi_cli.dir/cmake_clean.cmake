file(REMOVE_RECURSE
  "CMakeFiles/vqi_cli.dir/vqi_cli.cpp.o"
  "CMakeFiles/vqi_cli.dir/vqi_cli.cpp.o.d"
  "vqi_cli"
  "vqi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
