# Empty compiler generated dependencies file for vqi_cli.
# This may be replaced when dependencies are built.
