# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/vqi_cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_end_to_end "sh" "-c" "/root/repo/build/tools/vqi_cli gen-molecules 40 7 cli_test.lg && /root/repo/build/tools/vqi_cli build-db cli_test.lg cli_test.vqi 4 && /root/repo/build/tools/vqi_cli show cli_test.vqi && /root/repo/build/tools/vqi_cli export-dot cli_test.vqi cli_test.dot && /root/repo/build/tools/vqi_cli suggest cli_test.lg 0 3 && /root/repo/build/tools/vqi_cli usability cli_test.lg cli_test.vqi 10")
set_tests_properties(cli_end_to_end PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_network_flow "sh" "-c" "/root/repo/build/tools/vqi_cli gen-network 500 2 9 cli_net.lg && /root/repo/build/tools/vqi_cli build-net cli_net.lg cli_net.vqi 4 && /root/repo/build/tools/vqi_cli show cli_net.vqi")
set_tests_properties(cli_network_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
