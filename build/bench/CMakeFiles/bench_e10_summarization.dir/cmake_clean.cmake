file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_summarization.dir/bench_e10_summarization.cc.o"
  "CMakeFiles/bench_e10_summarization.dir/bench_e10_summarization.cc.o.d"
  "bench_e10_summarization"
  "bench_e10_summarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_summarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
