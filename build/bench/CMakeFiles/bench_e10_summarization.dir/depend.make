# Empty dependencies file for bench_e10_summarization.
# This may be replaced when dependencies are built.
