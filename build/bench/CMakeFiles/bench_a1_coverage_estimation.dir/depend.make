# Empty dependencies file for bench_a1_coverage_estimation.
# This may be replaced when dependencies are built.
