file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_coverage_estimation.dir/bench_a1_coverage_estimation.cc.o"
  "CMakeFiles/bench_a1_coverage_estimation.dir/bench_a1_coverage_estimation.cc.o.d"
  "bench_a1_coverage_estimation"
  "bench_a1_coverage_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_coverage_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
