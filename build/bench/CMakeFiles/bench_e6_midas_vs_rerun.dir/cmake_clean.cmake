file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_midas_vs_rerun.dir/bench_e6_midas_vs_rerun.cc.o"
  "CMakeFiles/bench_e6_midas_vs_rerun.dir/bench_e6_midas_vs_rerun.cc.o.d"
  "bench_e6_midas_vs_rerun"
  "bench_e6_midas_vs_rerun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_midas_vs_rerun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
