# Empty compiler generated dependencies file for bench_e6_midas_vs_rerun.
# This may be replaced when dependencies are built.
