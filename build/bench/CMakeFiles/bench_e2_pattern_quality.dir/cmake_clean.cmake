file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_pattern_quality.dir/bench_e2_pattern_quality.cc.o"
  "CMakeFiles/bench_e2_pattern_quality.dir/bench_e2_pattern_quality.cc.o.d"
  "bench_e2_pattern_quality"
  "bench_e2_pattern_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_pattern_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
