# Empty dependencies file for bench_e2_pattern_quality.
# This may be replaced when dependencies are built.
