# Empty dependencies file for bench_e1_usability_db.
# This may be replaced when dependencies are built.
