file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_usability_db.dir/bench_e1_usability_db.cc.o"
  "CMakeFiles/bench_e1_usability_db.dir/bench_e1_usability_db.cc.o.d"
  "bench_e1_usability_db"
  "bench_e1_usability_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_usability_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
