file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_usability_network.dir/bench_e5_usability_network.cc.o"
  "CMakeFiles/bench_e5_usability_network.dir/bench_e5_usability_network.cc.o.d"
  "bench_e5_usability_network"
  "bench_e5_usability_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_usability_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
