# Empty dependencies file for bench_e5_usability_network.
# This may be replaced when dependencies are built.
