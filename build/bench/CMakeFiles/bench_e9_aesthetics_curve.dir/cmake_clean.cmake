file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_aesthetics_curve.dir/bench_e9_aesthetics_curve.cc.o"
  "CMakeFiles/bench_e9_aesthetics_curve.dir/bench_e9_aesthetics_curve.cc.o.d"
  "bench_e9_aesthetics_curve"
  "bench_e9_aesthetics_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_aesthetics_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
