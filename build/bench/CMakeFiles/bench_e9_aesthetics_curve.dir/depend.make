# Empty dependencies file for bench_e9_aesthetics_curve.
# This may be replaced when dependencies are built.
