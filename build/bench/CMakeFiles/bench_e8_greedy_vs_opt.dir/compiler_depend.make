# Empty compiler generated dependencies file for bench_e8_greedy_vs_opt.
# This may be replaced when dependencies are built.
