file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_greedy_vs_opt.dir/bench_e8_greedy_vs_opt.cc.o"
  "CMakeFiles/bench_e8_greedy_vs_opt.dir/bench_e8_greedy_vs_opt.cc.o.d"
  "bench_e8_greedy_vs_opt"
  "bench_e8_greedy_vs_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_greedy_vs_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
