file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_timeseries.dir/bench_e11_timeseries.cc.o"
  "CMakeFiles/bench_e11_timeseries.dir/bench_e11_timeseries.cc.o.d"
  "bench_e11_timeseries"
  "bench_e11_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
