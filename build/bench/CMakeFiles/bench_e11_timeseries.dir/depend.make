# Empty dependencies file for bench_e11_timeseries.
# This may be replaced when dependencies are built.
