# Empty compiler generated dependencies file for bench_a2_log_aware.
# This may be replaced when dependencies are built.
