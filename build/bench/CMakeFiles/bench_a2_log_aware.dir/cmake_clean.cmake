file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_log_aware.dir/bench_a2_log_aware.cc.o"
  "CMakeFiles/bench_a2_log_aware.dir/bench_a2_log_aware.cc.o.d"
  "bench_a2_log_aware"
  "bench_a2_log_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_log_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
