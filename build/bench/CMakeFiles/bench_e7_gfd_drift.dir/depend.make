# Empty dependencies file for bench_e7_gfd_drift.
# This may be replaced when dependencies are built.
