# Empty dependencies file for bench_e13_network_maintenance.
# This may be replaced when dependencies are built.
