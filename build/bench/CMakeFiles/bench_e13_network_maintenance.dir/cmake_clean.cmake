file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_network_maintenance.dir/bench_e13_network_maintenance.cc.o"
  "CMakeFiles/bench_e13_network_maintenance.dir/bench_e13_network_maintenance.cc.o.d"
  "bench_e13_network_maintenance"
  "bench_e13_network_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_network_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
