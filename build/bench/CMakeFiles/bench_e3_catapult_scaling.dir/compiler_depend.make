# Empty compiler generated dependencies file for bench_e3_catapult_scaling.
# This may be replaced when dependencies are built.
