file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_distributed.dir/bench_e12_distributed.cc.o"
  "CMakeFiles/bench_e12_distributed.dir/bench_e12_distributed.cc.o.d"
  "bench_e12_distributed"
  "bench_e12_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
