# Empty dependencies file for bench_e12_distributed.
# This may be replaced when dependencies are built.
